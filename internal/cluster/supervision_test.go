package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// postJSON drives a coordinator handler directly.
func postJSON(t *testing.T, h http.HandlerFunc, v any) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/x", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h(rec, req)
	return rec
}

func TestHealthStateTransitions(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		LeaseTTL:     100 * time.Millisecond,
		SuspectAfter: 100 * time.Millisecond,
		DeadAfter:    300 * time.Millisecond,
	})
	defer c.Close()
	rec := postJSON(t, c.handleRegister, registerRequest{ID: "w1", Addr: "http://x", Capacity: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("register: %d %s", rec.Code, rec.Body)
	}
	var rr registerResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.LeaseTTLMS != 100 {
		t.Fatalf("advertised lease TTL = %dms, want 100", rr.LeaseTTLMS)
	}

	age := func(d time.Duration) {
		c.mu.Lock()
		c.workers["w1"].lastBeat = time.Now().Add(-d)
		c.mu.Unlock()
	}
	snap := func() (alive, suspect, dead, capSlots int) {
		st := c.ClusterStats()
		return st.WorkersAlive, st.WorkersSuspect, st.WorkersDead, st.CapacitySlots
	}

	if a, s, d, cap := snap(); a != 1 || s != 0 || d != 0 || cap != 4 {
		t.Fatalf("fresh worker: alive=%d suspect=%d dead=%d cap=%d, want 1/0/0/4", a, s, d, cap)
	}
	age(150 * time.Millisecond)
	if a, s, d, cap := snap(); a != 0 || s != 1 || d != 0 || cap != 4 {
		t.Fatalf("aged 150ms: alive=%d suspect=%d dead=%d cap=%d, want 0/1/0/4 (suspect keeps capacity)", a, s, d, cap)
	}
	if !c.Ready() {
		t.Fatal("suspect-only fleet must still be Ready (leases are honored)")
	}
	age(400 * time.Millisecond)
	if a, s, d, cap := snap(); a != 0 || s != 0 || d != 1 || cap != 0 {
		t.Fatalf("aged 400ms: alive=%d suspect=%d dead=%d cap=%d, want 0/0/1/0", a, s, d, cap)
	}
	if c.Ready() {
		t.Fatal("all-dead fleet must not be Ready")
	}

	// A heartbeat resurrects the worker without re-registration.
	rec = postJSON(t, c.handleHeartbeat, heartbeatRequest{ID: "w1"})
	if rec.Code != http.StatusOK {
		t.Fatalf("heartbeat: %d", rec.Code)
	}
	if a, _, _, _ := snap(); a != 1 {
		t.Fatal("heartbeat must return a dead worker to alive")
	}

	// Heartbeats from ids the coordinator never saw ask for re-registration.
	rec = postJSON(t, c.handleHeartbeat, heartbeatRequest{ID: "ghost"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown-worker heartbeat: %d, want 404", rec.Code)
	}
}

func TestPickWorkerWeightedDispatch(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second})
	defer c.Close()
	now := time.Now()
	add := func(id string, capacity, leased int, breakerFor time.Duration) {
		w := &workerState{id: id, capacity: capacity, leases: make(map[string]struct{}), lastBeat: now}
		for i := 0; i < leased; i++ {
			w.leases[id+"-l"+string(rune('0'+i))] = struct{}{}
		}
		if breakerFor > 0 {
			w.breakerUntil = now.Add(breakerFor)
		}
		c.workers[id] = w
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	add("a", 4, 3, 0) // free 1
	add("b", 4, 1, 0) // free 3 — most free, must win
	add("c", 2, 2, 0) // free 0
	if w := c.pickLocked(now, ""); w == nil || w.id != "b" {
		t.Fatalf("pick = %v, want b (most free slots)", w)
	}
	// Tie-break: equal free picks lowest id.
	add("ab", 4, 1, 0) // free 3, ties with b
	if w := c.pickLocked(now, ""); w == nil || w.id != "ab" {
		t.Fatalf("pick = %v, want ab (tie-break lowest id)", w)
	}
	// Avoidance: the lease's previous owner loses to any other candidate…
	if w := c.pickLocked(now, "ab"); w == nil || w.id != "b" {
		t.Fatalf("pick avoiding ab = %v, want b", w)
	}
	// …but is still used when it is the only option.
	add("b", 4, 4, 0)
	add("a", 4, 4, 0)
	add("c", 2, 2, 0)
	if w := c.pickLocked(now, "ab"); w == nil || w.id != "ab" {
		t.Fatalf("pick with only previous owner free = %v, want ab fallback", w)
	}
	// An open breaker removes a worker from dispatch entirely.
	add("ab", 4, 0, time.Minute)
	if w := c.pickLocked(now, ""); w != nil {
		t.Fatalf("pick = %v, want none (sole free worker has open breaker)", w.id)
	}
}

func TestDispatchFailureOpensBreaker(t *testing.T) {
	refusing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusInternalServerError)
	}))
	defer refusing.Close()

	c := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second, BreakerThreshold: 3})
	defer c.Close()
	postJSON(t, c.handleRegister, registerRequest{ID: "w1", Addr: refusing.URL, Capacity: 2})

	for i := 0; i < 3; i++ {
		l := &lease{id: "l", req: []byte("{}"), worker: "w1",
			done: make(chan leaseResult, 1), redispatch: make(chan struct{}, 1)}
		c.mu.Lock()
		c.workers["w1"].leases[l.id] = struct{}{}
		c.mu.Unlock()
		if c.send(refusing.URL, l) {
			t.Fatal("send to refusing worker must fail")
		}
		if l.worker != "" {
			t.Fatal("failed dispatch must unassign the lease")
		}
	}
	st := c.ClusterStats()
	if st.DispatchRetries != 3 {
		t.Fatalf("dispatch_retries = %d, want 3", st.DispatchRetries)
	}
	if len(st.Workers) != 1 || !st.Workers[0].BreakerOpen {
		t.Fatalf("breaker must open after 3 consecutive dispatch failures: %+v", st.Workers)
	}
	c.mu.Lock()
	w := c.pickLocked(time.Now(), "")
	c.mu.Unlock()
	if w != nil {
		t.Fatal("open breaker must exclude the worker from dispatch")
	}
}

func TestLateAndDivergentCompletions(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second})
	defer c.Close()
	l := &lease{id: "lease-1", key: "k",
		done: make(chan leaseResult, 1), redispatch: make(chan struct{}, 1)}
	c.mu.Lock()
	c.leases[l.id] = l
	c.mu.Unlock()

	good := json.RawMessage(`{"cycles":42}`)
	rec := postJSON(t, c.handleComplete, completeRequest{ID: "w1", Lease: l.id, Key: "k", Results: good})
	if rec.Code != http.StatusOK {
		t.Fatalf("complete: %d", rec.Code)
	}
	select {
	case r := <-l.done:
		if r.err != nil || string(r.raw) != string(good) {
			t.Fatalf("committed result = %q err=%v", r.raw, r.err)
		}
	default:
		t.Fatal("completion must signal the waiting Execute")
	}

	// A duplicate with identical bytes is late but not divergent — the
	// deterministic-retry invariant holding.
	postJSON(t, c.handleComplete, completeRequest{ID: "w2", Lease: l.id, Key: "k", Results: good})
	st := c.ClusterStats()
	if st.JobsLate != 1 || st.JobsDivergent != 0 {
		t.Fatalf("identical duplicate: late=%d divergent=%d, want 1/0", st.JobsLate, st.JobsDivergent)
	}

	// A duplicate with different bytes is the invariant breaking: counted.
	postJSON(t, c.handleComplete, completeRequest{ID: "w2", Lease: l.id, Key: "k", Results: json.RawMessage(`{"cycles":41}`)})
	st = c.ClusterStats()
	if st.JobsLate != 2 || st.JobsDivergent != 1 {
		t.Fatalf("divergent duplicate: late=%d divergent=%d, want 2/1", st.JobsLate, st.JobsDivergent)
	}
	if st.JobsCompleted != 1 {
		t.Fatalf("jobs_completed = %d, want 1 (first completion wins)", st.JobsCompleted)
	}
}

func TestReregisterExpiresOldLeases(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Hour}) // janitor can't interfere
	defer c.Close()
	postJSON(t, c.handleRegister, registerRequest{ID: "w1", Addr: "http://old", Capacity: 2})
	l := &lease{id: "l1", worker: "w1", deadline: time.Now().Add(time.Hour),
		done: make(chan leaseResult, 1), redispatch: make(chan struct{}, 1)}
	c.mu.Lock()
	c.leases[l.id] = l
	c.workers["w1"].leases[l.id] = struct{}{}
	c.mu.Unlock()

	// The same id coming back is a restarted process: its lease must be
	// freed for re-dispatch immediately, not after TTL.
	postJSON(t, c.handleRegister, registerRequest{ID: "w1", Addr: "http://new", Capacity: 2})
	select {
	case <-l.redispatch:
	default:
		t.Fatal("re-registration must signal re-dispatch of the old incarnation's leases")
	}
	if l.worker != "" {
		t.Fatal("lease must be unassigned after owner re-registers")
	}
	if st := c.ClusterStats(); st.JobsRedispatched != 1 {
		t.Fatalf("jobs_redispatched = %d, want 1", st.JobsRedispatched)
	}
}
