package sweep

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/system"
	"repro/internal/workload"
)

// TestSweepMatchesDirectRuns pins the acceptance property: a grid point's
// cycle count is bit-identical to a standalone system.New + Run with the
// same mutated configuration.
func TestSweepMatchesDirectRuns(t *testing.T) {
	g := Grid{
		Name:      "flowtable-mini",
		Scale:     workload.ScaleTiny,
		Workloads: []string{"lud"},
		Schemes:   []system.Scheme{system.SchemeARFtid},
		Axes: []Axis{
			Ints("are.max_flows", []int{64, 256},
				func(cfg *system.Config, v int) { cfg.ARE.MaxFlows = v }),
		},
	}
	res, err := Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for i, mf := range []int{64, 256} {
		cfg := system.DefaultConfig(system.SchemeARFtid)
		cfg.ARE.MaxFlows = mf
		sys, err := system.New(cfg, "lud", workload.ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		p := res.Points[i]
		if p.Cycles != direct.Cycles {
			t.Fatalf("point %d: sweep cycles %d != direct cycles %d", i, p.Cycles, direct.Cycles)
		}
		if p.Instructions != direct.Instructions {
			t.Fatalf("point %d: instruction count diverges", i)
		}
		if p.ConfigHash != cfg.Hash() {
			t.Fatalf("point %d: config hash mismatch", i)
		}
	}
	if res.Points[0].ConfigHash == res.Points[1].ConfigHash {
		t.Fatal("distinct grid points share a config hash")
	}
}

// TestSweepDeterministicOrder checks grid order: axes outermost, then
// workload, then scheme — independent of pool scheduling.
func TestSweepDeterministicOrder(t *testing.T) {
	g := Grid{
		Name:      "order",
		Scale:     workload.ScaleTiny,
		Workloads: []string{"reduce", "mac"},
		Schemes:   []system.Scheme{system.SchemeHMC, system.SchemeARFtid},
		Axes: []Axis{
			Ints("memnet.link_bw", []int{16, 32},
				func(cfg *system.Config, v int) { cfg.MemNet.LinkBandwidth = v }),
		},
	}
	if g.Size() != 8 {
		t.Fatalf("size = %d", g.Size())
	}
	res, err := Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		coord, wl, sch string
	}{
		{"16", "reduce", "HMC"}, {"16", "reduce", "ARF-tid"},
		{"16", "mac", "HMC"}, {"16", "mac", "ARF-tid"},
		{"32", "reduce", "HMC"}, {"32", "reduce", "ARF-tid"},
		{"32", "mac", "HMC"}, {"32", "mac", "ARF-tid"},
	}
	for i, w := range want {
		p := res.Points[i]
		if p.Index != i || p.Coords[0] != w.coord || p.Workload != w.wl || p.Scheme != w.sch {
			t.Fatalf("point %d = %+v, want %+v", i, p, w)
		}
	}
}

// TestSweepInvalidConfigFails checks that validation runs per point and
// aborts the sweep.
func TestSweepInvalidConfigFails(t *testing.T) {
	g := Grid{
		Name:      "invalid",
		Scale:     workload.ScaleTiny,
		Workloads: []string{"reduce"},
		Schemes:   []system.Scheme{system.SchemeARFtid},
		Axes: []Axis{
			Ints("are.max_flows", []int{0},
				func(cfg *system.Config, v int) { cfg.ARE.MaxFlows = v }),
		},
	}
	_, err := Run(context.Background(), g)
	if err == nil || !strings.Contains(err.Error(), "MaxFlows") {
		t.Fatalf("invalid point not rejected: %v", err)
	}
}

// TestSweepCancelledBeforeStart checks that a cancelled sweep returns
// promptly without running any grid point.
func TestSweepCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := LinkBandwidthStudy(workload.ScaleTiny)
	res, err := Run(ctx, g)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned (%v, %v)", res, err)
	}
}

// TestPoolFailFast checks with one worker (deterministic schedule) that the
// first error stops every queued job.
func TestPoolFailFast(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := RunJobs(context.Background(), 100, 1, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d jobs ran after the failure", n)
	}
}

// TestPoolFailFastParallel checks under real parallelism that a failure
// cancels the jobs' context and the pool drains without running the whole
// queue to completion.
func TestPoolFailFastParallel(t *testing.T) {
	boom := errors.New("boom")
	var sawCancel atomic.Bool
	err := RunJobs(context.Background(), 64, 4, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		if ctx.Err() != nil {
			sawCancel.Store(true)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestPoolReportsLowestIndexError checks deterministic error selection when
// several jobs fail.
func TestPoolReportsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := RunJobs(context.Background(), 4, 1, func(ctx context.Context, i int) error {
		switch i {
		case 1:
			return errA
		case 2:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want lowest-index error", err)
	}
}

func TestPoolCompletesAllJobs(t *testing.T) {
	var ran atomic.Int64
	if err := RunJobs(context.Background(), 50, 8, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d of 50 jobs", ran.Load())
	}
}

func TestStudiesResolve(t *testing.T) {
	for _, name := range StudyNames() {
		g, err := StudyGrid(name, workload.ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		if g.Size() == 0 {
			t.Fatalf("study %s expands to an empty grid", name)
		}
	}
	if _, err := StudyGrid("nope", workload.ScaleTiny); err == nil {
		t.Fatal("unknown study accepted")
	}
}

func TestEmitters(t *testing.T) {
	g := Grid{
		Name:      "emit",
		Scale:     workload.ScaleTiny,
		Workloads: []string{"reduce"},
		Schemes:   []system.Scheme{system.SchemeARFtid},
		Axes: []Axis{
			Ints("are.operand_bufs", []int{16, 32},
				func(cfg *system.Config, v int) { cfg.ARE.OperandBufs = v }),
		},
	}
	res, err := Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	var jsonBuf, csvBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csvBuf, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"study": "emit"`, `"are.operand_bufs"`, `"config_hash"`} {
		if !strings.Contains(jsonBuf.String(), want) {
			t.Fatalf("JSON output missing %s", want)
		}
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 points", len(lines))
	}
	if !strings.HasPrefix(lines[0], "index,are.operand_bufs,workload,scheme") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	for _, l := range lines {
		if strings.Contains(l, "NaN") || strings.Contains(l, "Inf") {
			t.Fatalf("CSV contains non-finite value: %q", l)
		}
	}
}

func TestSweepEmptyAxisRejected(t *testing.T) {
	g := Grid{
		Name:      "empty-axis",
		Scale:     workload.ScaleTiny,
		Workloads: []string{"reduce"},
		Schemes:   []system.Scheme{system.SchemeHMC},
		Axes:      []Axis{{Name: "are.max_flows"}},
	}
	if _, err := Run(context.Background(), g); err == nil || !strings.Contains(err.Error(), "no values") {
		t.Fatalf("empty axis accepted: %v", err)
	}
}
