package sweep

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPanickingJobReleasesSlots pins the budget slot-leak guard: a job
// function that panics must still release every slot it held, the panic
// must surface as an ordinary job error (fail-fast cancelling the pool),
// and the budget must stay fully usable afterwards. Run under -race in CI.
func TestPanickingJobReleasesSlots(t *testing.T) {
	b := NewBudget(2)
	err := RunJobsOn(context.Background(), 4, b, func(ctx context.Context, i int) error {
		if i == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want job-panicked error", err)
	}
	if got := b.InUse(); got != 0 {
		t.Fatalf("budget leaked %d slots after panic", got)
	}

	// The budget must still hand out its full capacity.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := b.AcquireN(ctx, 2)
	if err != nil || got != 2 {
		t.Fatalf("AcquireN after panic = (%d, %v), want (2, nil)", got, err)
	}
	b.ReleaseN(got)
}

// TestPanickingWeightedJobReleasesAllSlots is the multi-slot variant: a
// sharded job holding several slots panics and every slot must come back —
// a partial release would shrink the budget for every later pool run.
func TestPanickingWeightedJobReleasesAllSlots(t *testing.T) {
	b := NewBudget(4)
	var mu sync.Mutex
	ran := map[int]bool{}
	err := RunWeightedJobsOn(context.Background(), 3, b,
		func(i int) int { return 2 },
		func(ctx context.Context, i int) error {
			mu.Lock()
			ran[i] = true
			mu.Unlock()
			if i == 0 {
				panic("weighted boom")
			}
			return nil
		})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want job-panicked error", err)
	}
	mu.Lock()
	if !ran[0] {
		t.Fatal("panicking job never ran")
	}
	mu.Unlock()
	if got := b.InUse(); got != 0 {
		t.Fatalf("budget leaked %d slots after weighted panic", got)
	}
	if got, err := b.AcquireN(context.Background(), 4); err != nil || got != 4 {
		t.Fatalf("AcquireN(4) after panic = (%d, %v), want full capacity back", got, err)
	}
}
