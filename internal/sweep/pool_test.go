package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSharedBudgetBoundsConcurrency runs several pools concurrently on one
// shared budget and asserts their combined in-flight job count never
// exceeds the budget cap — the property the service layer relies on to
// bound total simulation parallelism across sweeps, suites and ad-hoc jobs.
func TestSharedBudgetBoundsConcurrency(t *testing.T) {
	const cap = 2
	b := NewBudget(cap)
	var inFlight, peak atomic.Int64
	job := func(ctx context.Context, i int) error {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	}
	var wg sync.WaitGroup
	for pool := 0; pool < 3; pool++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunJobsOn(context.Background(), 8, b, job); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Errorf("peak concurrency %d exceeded shared budget cap %d", p, cap)
	}
	if got := b.InUse(); got != 0 {
		t.Errorf("budget InUse = %d after drain, want 0", got)
	}
	if got := b.Waiting(); got != 0 {
		t.Errorf("budget Waiting = %d after drain, want 0", got)
	}
}

// TestBudgetAcquireHonorsCancel pins that a blocked Acquire returns when
// the context dies instead of waiting for a slot forever.
func TestBudgetAcquireHonorsCancel(t *testing.T) {
	b := NewBudget(1)
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Acquire(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Acquire succeeded on a full budget with a dead context")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire did not observe cancellation")
	}
	b.Release()
	if got := b.InUse(); got != 0 {
		t.Errorf("InUse = %d, want 0", got)
	}
}

// TestBudgetAcquireN pins the weighted-job contract: AcquireN holds n
// slots (clamped to the cap), concurrent weighted acquires never
// deadlock, and ReleaseN restores the budget.
func TestBudgetAcquireN(t *testing.T) {
	b := NewBudget(4)
	ctx := context.Background()
	held, err := b.AcquireN(ctx, 3)
	if err != nil || held != 3 {
		t.Fatalf("AcquireN(3) = %d, %v", held, err)
	}
	if b.InUse() != 3 {
		t.Fatalf("InUse = %d, want 3", b.InUse())
	}
	// An oversized request clamps to the cap rather than deadlocking.
	done := make(chan int)
	go func() {
		h, err := b.AcquireN(ctx, 99)
		if err != nil {
			t.Error(err)
		}
		done <- h
	}()
	b.ReleaseN(3)
	if h := <-done; h != 4 {
		t.Fatalf("oversized AcquireN held %d, want cap 4", h)
	}
	b.ReleaseN(4)
	if b.InUse() != 0 {
		t.Fatalf("InUse = %d after release, want 0", b.InUse())
	}
	// Two concurrent weighted acquires over a small budget make progress.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				h, err := b.AcquireN(ctx, 3)
				if err != nil {
					t.Error(err)
					return
				}
				b.ReleaseN(h)
			}
		}()
	}
	wg.Wait()
}

// TestBudgetAcquireCancellation pins the slot-release guarantee the service
// layer's per-job deadlines rely on: an Acquire or AcquireN blocked on a
// full budget returns promptly when its context is cancelled, drains the
// waiting gauge, and leaks no slots — the full capacity is reacquirable
// afterwards. Run under -race this also exercises the waiter accounting.
func TestBudgetAcquireCancellation(t *testing.T) {
	const cap = 3
	b := NewBudget(cap)
	for i := 0; i < cap; i++ {
		if err := b.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// A blocked single Acquire and a blocked weighted AcquireN, each with
	// its own cancellable context.
	type result struct {
		held int
		err  error
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	res1 := make(chan result, 1)
	res2 := make(chan result, 1)
	go func() {
		err := b.Acquire(ctx1)
		res1 <- result{1, err}
	}()
	go func() {
		h, err := b.AcquireN(ctx2, 2)
		res2 <- result{h, err}
	}()

	// Wait until both are visibly queued, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for b.Waiting() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never queued: Waiting = %d", b.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	cancel1()
	cancel2()
	for _, ch := range []chan result{res1, res2} {
		select {
		case r := <-ch:
			if !errors.Is(r.err, context.Canceled) {
				t.Fatalf("cancelled acquire returned err=%v, want context.Canceled", r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled acquire did not return promptly")
		}
	}
	if w := b.Waiting(); w != 0 {
		t.Fatalf("Waiting = %d after cancellation, want 0", w)
	}

	// No slots leaked: release the original holders and reacquire the full
	// capacity, both singly and weighted.
	for i := 0; i < cap; i++ {
		b.Release()
	}
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d after release, want 0", got)
	}
	h, err := b.AcquireN(context.Background(), cap)
	if err != nil || h != cap {
		t.Fatalf("AcquireN after cancellation: held %d err %v, want full cap %d", h, err, cap)
	}
	b.ReleaseN(h)
}

// TestRunWeightedJobsOnBoundsSlots is the regression test for the budget
// ignoring per-job shard weight: a weighted job must hold its full worker
// count while running, so total held slots — not just job count — stays
// bounded by the cap. Before weighted dispatch, four 2-worker jobs on a
// 4-slot budget could run all at once (8 hardware threads on 4 slots).
func TestRunWeightedJobsOnBoundsSlots(t *testing.T) {
	const cap = 4
	const weight = 2
	b := NewBudget(cap)
	var held, peak atomic.Int64
	err := RunWeightedJobsOn(context.Background(), 8, b, func(int) int { return weight },
		func(ctx context.Context, i int) error {
			n := held.Add(weight)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			held.Add(-weight)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > cap {
		t.Errorf("peak held slots %d exceeded budget cap %d", p, cap)
	}
	if got := b.InUse(); got != 0 {
		t.Errorf("budget InUse = %d after drain, want 0", got)
	}
}

// TestRunWeightedJobsOnClampsOversizedWeight pins AcquireN's clamp: a job
// declaring more workers than the budget holds still runs (with the whole
// budget), rather than deadlocking or erroring.
func TestRunWeightedJobsOnClampsOversizedWeight(t *testing.T) {
	b := NewBudget(2)
	ran := 0
	err := RunWeightedJobsOn(context.Background(), 3, b, func(int) int { return 16 },
		func(ctx context.Context, i int) error {
			ran++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("ran %d jobs, want 3", ran)
	}
	if got := b.InUse(); got != 0 {
		t.Errorf("budget InUse = %d after drain, want 0", got)
	}
}
