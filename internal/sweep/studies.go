package sweep

import (
	"fmt"
	"sort"

	"repro/internal/system"
	"repro/internal/workload"
)

// Study builds a named grid at a given input scale.
type Study func(scale workload.Scale) Grid

// Studies returns the built-in studies by CLI name.
func Studies() map[string]Study {
	return map[string]Study{
		"flowtable": FlowTableStudy,
		"linkbw":    LinkBandwidthStudy,
	}
}

// StudyNames lists the built-in studies in sorted order (CLI help).
func StudyNames() []string {
	var names []string
	for n := range Studies() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FlowTableStudy is the Active Flow Table capacity ablation on lud: the
// workload with the deepest concurrent-flow pressure (Fig 5.3), swept over
// ARE.MaxFlows for both forest policies. FlowPeak in the per-point record
// shows the demand each capacity must cover.
//
// The axis starts at 64 because capacities below the workload's peak
// concurrent-flow demand (44 for ARF-tid, 64 for ARF-addr at ScaleTiny)
// deadlock rather than degrade: a new-flow update head-of-line blocks the
// ARE input queue ahead of the very gather packets that would release
// existing entries. That feasibility frontier — not a graceful slowdown —
// is the capacity ablation's finding; EXPERIMENTS.md records it.
func FlowTableStudy(scale workload.Scale) Grid {
	return Grid{
		Name:      "flowtable",
		Scale:     scale,
		Workloads: []string{"lud"},
		Schemes:   []system.Scheme{system.SchemeARFtid, system.SchemeARFaddr},
		Axes: []Axis{
			Ints("are.max_flows", []int{64, 96, 128, 192, 256},
				func(cfg *system.Config, v int) { cfg.ARE.MaxFlows = v }),
		},
		PrefixCycle: flowTablePrefixCycle(scale),
	}
}

// flowTablePrefixCycle places the study's shared-prefix checkpoint deep in
// lud's run at each scale — late enough that forks skip most of the work,
// early enough that both schemes still have quiescent points past it
// (measured run lengths: ~8.0k/8.2k cycles at tiny, ~759k/887k at small
// for ARF-tid/ARF-addr). Unmeasured scales disable sharing: a PrefixCycle
// past the run's end would still be CORRECT (RunToCheckpoint reports no
// quiescent point and every member runs cold) but would probe the whole
// run for nothing.
func flowTablePrefixCycle(scale workload.Scale) uint64 {
	switch scale {
	case workload.ScaleTiny:
		return 5_000
	case workload.ScaleSmall:
		return 600_000
	default:
		return 0
	}
}

// LinkBandwidthStudy is the memory-network link bandwidth sensitivity on
// the Fig 5.1a benchmark suite, comparing plain HMC against ARF-tid. It
// tests whether Active-Routing's movement profile (Fig 5.4) translates
// into graceful degradation as links narrow; EXPERIMENTS.md records the
// per-workload answer (it tracks the movement ratio, not one scheme).
func LinkBandwidthStudy(scale workload.Scale) Grid {
	return Grid{
		Name:      "linkbw",
		Scale:     scale,
		Workloads: workload.Benchmarks(),
		Schemes:   []system.Scheme{system.SchemeHMC, system.SchemeARFtid},
		Axes: []Axis{
			Ints("memnet.link_bw", []int{8, 16, 32, 64},
				func(cfg *system.Config, v int) { cfg.MemNet.LinkBandwidth = v }),
		},
	}
}

// StudyGrid resolves a study name at a scale.
func StudyGrid(name string, scale workload.Scale) (Grid, error) {
	st, ok := Studies()[name]
	if !ok {
		return Grid{}, fmt.Errorf("sweep: unknown study %q (want one of %v)", name, StudyNames())
	}
	return st(scale), nil
}
