package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunJobs executes n indexed jobs on a bounded worker pool with fail-fast
// cancellation. Workers pull indices in order; the first job error cancels
// the pool context, so queued jobs never start (running jobs finish — the
// simulator has no mid-run preemption points). The returned error is the
// lowest-index job error, preferring real failures over cancellation noise;
// a nil return means every job ran and succeeded.
//
// Jobs communicate results by writing to caller-owned, index-addressed
// storage: distinct indices never alias, so no locking is needed and result
// order is deterministic regardless of scheduling.
func RunJobs(ctx context.Context, n, workers int, run func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if err := run(ctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		return err
	}
	return firstCancel
}
