package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Budget is a shared worker budget: a counting semaphore sized to a worker
// count that any number of concurrent pool runs (sweeps, suites, ad-hoc
// service jobs) can draw from, so their combined simulation parallelism
// never exceeds the cap. A Budget also tracks how many slots are held and
// how many acquirers are blocked waiting, which the service layer surfaces
// as in-flight/queue-depth statistics.
type Budget struct {
	// multi serializes AcquireN calls (see AcquireN's deadlock note).
	multi   sync.Mutex
	sem     chan struct{}
	inUse   atomic.Int64
	waiting atomic.Int64
}

// NewBudget sizes a budget; workers <= 0 means GOMAXPROCS.
func NewBudget(workers int) *Budget {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Budget{sem: make(chan struct{}, workers)}
}

// Cap returns the worker capacity.
func (b *Budget) Cap() int { return cap(b.sem) }

// InUse returns the number of slots currently held.
func (b *Budget) InUse() int { return int(b.inUse.Load()) }

// Waiting returns the number of acquirers currently blocked on a full
// budget (the scheduler's queue depth).
func (b *Budget) Waiting() int { return int(b.waiting.Load()) }

// Acquire blocks until a worker slot is free or ctx is done. A nil error
// means the caller holds a slot and must Release it.
func (b *Budget) Acquire(ctx context.Context) error {
	select {
	case b.sem <- struct{}{}:
		b.inUse.Add(1)
		return nil
	default:
	}
	b.waiting.Add(1)
	defer b.waiting.Add(-1)
	select {
	case b.sem <- struct{}{}:
		b.inUse.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot to the budget.
func (b *Budget) Release() {
	b.inUse.Add(-1)
	<-b.sem
}

// AcquireN obtains n slots for one weighted job — a sharded simulation
// consuming w workers holds w slots, so the daemon's total hardware-thread
// use stays bounded by one budget regardless of kernel choice. n is
// clamped to [1, Cap]; multi-acquires serialize against each other (a
// mutex) so two weighted jobs can never deadlock splitting the pool. The
// returned count is what the caller must ReleaseN.
func (b *Budget) AcquireN(ctx context.Context, n int) (int, error) {
	if n > cap(b.sem) {
		n = cap(b.sem)
	}
	if n <= 1 {
		if err := b.Acquire(ctx); err != nil {
			return 0, err
		}
		return 1, nil
	}
	b.multi.Lock()
	defer b.multi.Unlock()
	for i := 0; i < n; i++ {
		if err := b.Acquire(ctx); err != nil {
			b.ReleaseN(i)
			return 0, err
		}
	}
	return n, nil
}

// ReleaseN returns n slots obtained by AcquireN.
func (b *Budget) ReleaseN(n int) {
	for i := 0; i < n; i++ {
		b.Release()
	}
}

// runGuarded runs job i holding got budget slots, releasing them on every
// exit path — including a panicking job function. Without the recover, a
// panic would unwind past the release and leak the slots: every subsequent
// pool run sharing the budget would be permanently down got workers (and a
// cap-sized leak deadlocks the budget outright). The panic is converted to
// an ordinary job error so the pool's fail-fast path cancels the rest.
func runGuarded(ctx context.Context, i, got int, b *Budget, run func(ctx context.Context, i int) error) (err error) {
	defer b.ReleaseN(got)
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: job %d panicked: %v", i, r)
		}
	}()
	return run(ctx, i)
}

// RunJobs executes n indexed jobs on a bounded worker pool with fail-fast
// cancellation, using a private budget of the given size (workers <= 0
// means GOMAXPROCS). See RunJobsOn for the scheduling contract.
func RunJobs(ctx context.Context, n, workers int, run func(ctx context.Context, i int) error) error {
	// NewBudget maps workers <= 0 to GOMAXPROCS; RunJobsOn never spawns
	// more goroutines than jobs, so an oversized budget is harmless.
	return RunJobsOn(ctx, n, NewBudget(workers), run)
}

// RunJobsOn executes n indexed jobs on the shared budget b (nil means a
// private GOMAXPROCS-sized budget) with fail-fast cancellation. Workers
// pull indices in order and acquire one budget slot per job, so concurrent
// RunJobsOn calls sharing a budget never exceed its cap combined. The first
// job error cancels the pool context, so queued jobs never start and
// running simulations abandon at the kernel's cancellation stride. The
// returned error is the lowest-index job error, preferring real failures
// over cancellation noise; a nil return means every job ran and succeeded.
//
// Jobs communicate results by writing to caller-owned, index-addressed
// storage: distinct indices never alias, so no locking is needed and result
// order is deterministic regardless of scheduling.
func RunJobsOn(ctx context.Context, n int, b *Budget, run func(ctx context.Context, i int) error) error {
	return RunWeightedJobsOn(ctx, n, b, nil, run)
}

// RunWeightedJobsOn is RunJobsOn for jobs with heterogeneous worker
// appetites: weight(i) reports how many budget slots job i occupies while
// running — a sharded simulation's *resolved* worker count, so one
// 4-worker job takes the same budget share as four sequential jobs and the
// combined hardware-thread use stays bounded by the cap regardless of
// kernel mix. Weights are clamped by AcquireN to [1, Cap]; a nil weight
// means one slot per job (RunJobsOn). Everything else — pull order,
// fail-fast cancellation, error preference — matches RunJobsOn.
func RunWeightedJobsOn(ctx context.Context, n int, b *Budget, weight func(i int) int, run func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if b == nil {
		b = NewBudget(0)
	}
	workers := b.Cap()
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				want := 1
				if weight != nil {
					want = weight(i)
				}
				got, err := b.AcquireN(ctx, want)
				if err != nil {
					errs[i] = err
					continue
				}
				err = runGuarded(ctx, i, got, b, run)
				if err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		return err
	}
	return firstCancel
}
