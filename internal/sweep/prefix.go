package sweep

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/store"
	"repro/internal/system"
)

// Prefix-shared sweep execution.
//
// Many grid points differ only in knobs that cannot influence the first
// PrefixCycle cycles of simulation: the points of a flow-table capacity
// ablation all simulate the identical machine until the table first fills.
// Such points form a shared-prefix family — same workload, scheme, scale
// and Config.PrefixHash at PrefixCycle. RunPrefixShared simulates each
// family's prefix ONCE (the leader runs to a quiescent checkpoint, then on
// to completion), and forks the remaining points from the checkpoint, so a
// family of k points costs roughly one full run plus (k-1) suffix runs
// instead of k full runs.
//
// Correctness is never traded for the saving: a fork is taken only when
// the leader's demand PROVES the fork's configuration would have simulated
// the prefix identically (see forkValid), and every fallback path — no
// quiescent point, a guard miss, a stale or unreadable stored snapshot —
// is a full cold run, bit-identical to plain Run.

// PrefixStats reports how a prefix-shared sweep executed its points.
type PrefixStats struct {
	// Families is the number of shared-prefix families the grid factored
	// into (singleton families included).
	Families int `json:"families"`
	// LeaderRuns counts leaders simulated from cycle 0 (checkpoint or not).
	LeaderRuns int `json:"leader_runs"`
	// StoreHits counts leaders warm-started from the snapshot store.
	StoreHits int `json:"store_hits"`
	// ForkResumes counts non-leader points resumed from a checkpoint.
	ForkResumes int `json:"fork_resumes"`
	// ColdFallbacks counts non-leader points that ran cold: the family has
	// no checkpoint, the fork-validity guard failed, or a restore errored.
	ColdFallbacks int `json:"cold_fallbacks"`
}

// family is one shared-prefix group: its snapshot-store key, its member
// job indices (leader first), and — once the leader phase ran — the
// checkpoint blob plus the leader's flow-table demand at the checkpoint.
type family struct {
	key     string
	members []int // job indices, leader at members[0]

	snap  []byte
	peak  int
	stall uint64
}

// forkValid reports whether the family's checkpoint restores bit-exactly
// under cfg. The only behavior-divergent knob PrefixHash excludes is
// ARE.MaxFlows, and capacity influences simulation solely by stalling a
// full table: with zero stalls and a peak within the fork's capacity the
// prefix provably never observed the difference.
func (f *family) forkValid(cfg *system.Config) bool {
	return f.snap != nil && f.stall == 0 && f.peak <= cfg.ARE.MaxFlows
}

// RunPrefixShared executes the grid like RunOn but factors its points into
// shared-prefix families at g.PrefixCycle, drawing workers from budget b
// (nil means a private budget sized by g.Workers). When snaps is non-nil,
// family checkpoints are looked up in and persisted to it, so a later
// process (or a service warm-start) skips the prefix entirely. Results are
// bit-identical to Run — point order, values and hashes — only wall-clock
// differs. A zero PrefixCycle degenerates to plain RunOn.
func RunPrefixShared(ctx context.Context, g Grid, b *Budget, snaps *store.Store) (*Result, *PrefixStats, error) {
	if g.PrefixCycle == 0 {
		res, err := RunOn(ctx, g, b)
		return res, &PrefixStats{}, err
	}
	if len(g.Workloads) == 0 || len(g.Schemes) == 0 {
		return nil, nil, fmt.Errorf("sweep %s: grid needs at least one workload and one scheme", g.Name)
	}
	for _, ax := range g.Axes {
		if len(ax.Values) == 0 {
			return nil, nil, fmt.Errorf("sweep %s: axis %q has no values (would expand to an empty grid)", g.Name, ax.Name)
		}
	}
	if b == nil {
		b = NewBudget(g.Workers)
	}

	jobs := g.expand()
	cfgs := make([]system.Config, len(jobs))
	for i, j := range jobs {
		cfg := system.DefaultConfig(j.scheme)
		for _, mut := range j.mutators {
			mut(&cfg)
		}
		if g.SimShards != 0 && cfg.Shards == 0 {
			cfg.Shards = g.SimShards
		}
		if err := cfg.Validate(); err != nil {
			return nil, nil, fmt.Errorf("sweep %s point %v %s/%s: %w", g.Name, j.coords, j.scheme, j.wl, err)
		}
		// Resolve before keying: Shards/Workers are hash- and prefix-
		// invariant, and the resolved value weights budget acquisition.
		system.ResolveKernel(&cfg, b.Cap())
		cfgs[i] = cfg
	}

	// Factor into families. The leader is the member with the SMALLEST
	// flow-table capacity: if the prefix never stalls the tightest table,
	// its peak fits every sibling's capacity and the whole family forks.
	byKey := map[string]*family{}
	var fams []*family
	for i, j := range jobs {
		key := system.SnapshotKey(&cfgs[i], g.PrefixCycle, j.wl, g.Scale.String())
		f, ok := byKey[key]
		if !ok {
			f = &family{key: key}
			byKey[key] = f
			fams = append(fams, f)
		}
		f.members = append(f.members, i)
	}
	for _, f := range fams {
		sort.Slice(f.members, func(a, b int) bool {
			ma, mb := f.members[a], f.members[b]
			if cfgs[ma].ARE.MaxFlows != cfgs[mb].ARE.MaxFlows {
				return cfgs[ma].ARE.MaxFlows < cfgs[mb].ARE.MaxFlows
			}
			return ma < mb
		})
	}

	points := make([]Point, len(jobs))
	st := &PrefixStats{Families: len(fams)}

	// Phase 1 — leaders: each family's leader either warm-starts from the
	// snapshot store or simulates from cycle 0 through a checkpoint, then
	// runs to completion. Exactly one job touches each family struct, so
	// the phase needs no locking; per-family outcome flags are summed after
	// the pool drains (deterministic, no atomics).
	warm := make([]bool, len(fams))
	leaderWeight := func(fi int) int { return cfgs[fams[fi].members[0]].ResolvedWorkers() }
	err := RunWeightedJobsOn(ctx, len(fams), b, leaderWeight, func(ctx context.Context, fi int) error {
		f := fams[fi]
		i := f.members[0]
		j := jobs[i]
		cfg := cfgs[i]
		sys, err := system.New(cfg, j.wl, g.Scale)
		if err != nil {
			return fmt.Errorf("sweep %s point %v: %w", g.Name, j.coords, err)
		}
		if snaps != nil {
			if blob, ok := snaps.Get(f.key); ok {
				if rerr := sys.Restore(blob); rerr == nil {
					f.snap = blob
					warm[fi] = true
				} else {
					// A failed restore leaves the machine partially decoded:
					// rebuild and fall through to the cold leader path. The
					// stored blob stays (another configuration may still
					// restore it); this family just re-derives its own.
					sys, err = system.New(cfg, j.wl, g.Scale)
					if err != nil {
						return fmt.Errorf("sweep %s point %v: %w", g.Name, j.coords, err)
					}
				}
			}
		}
		if f.snap == nil {
			blob, err := sys.RunToCheckpoint(ctx, g.PrefixCycle, nil)
			if err != nil {
				return fmt.Errorf("sweep %s point %v: %w", g.Name, j.coords, err)
			}
			f.snap = blob // nil when the run finished before any quiescent point
			if blob != nil && snaps != nil {
				// Persistence is an optimization: a store write failure must
				// not fail the sweep (the checkpoint is in memory and every
				// fork this process takes still works).
				_ = snaps.Put(f.key, blob)
			}
		}
		if f.snap != nil {
			// Demand at the checkpoint: read directly after RunToCheckpoint,
			// or from the restored counters after a warm start — both stand
			// at the snapshot cycle.
			f.peak, f.stall = sys.FlowTableDemand()
		}
		r, err := sys.RunCtx(ctx)
		if err != nil {
			return fmt.Errorf("sweep %s point %v: %w", g.Name, j.coords, err)
		}
		points[i] = newPoint(i, j, &cfg, r)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for fi := range fams {
		if warm[fi] {
			st.StoreHits++
		} else {
			st.LeaderRuns++
		}
	}

	// Phase 2 — forks: every non-leader point, in parallel across all
	// families. Guard misses and restore failures fall back to cold runs.
	var forks []int
	for _, f := range fams {
		forks = append(forks, f.members[1:]...)
	}
	famOf := map[int]*family{}
	for _, f := range fams {
		for _, i := range f.members[1:] {
			famOf[i] = f
		}
	}
	resumed := make([]bool, len(forks))
	forkWeight := func(k int) int { return cfgs[forks[k]].ResolvedWorkers() }
	err = RunWeightedJobsOn(ctx, len(forks), b, forkWeight, func(ctx context.Context, k int) error {
		i := forks[k]
		j := jobs[i]
		cfg := cfgs[i]
		f := famOf[i]
		sys, err := system.New(cfg, j.wl, g.Scale)
		if err != nil {
			return fmt.Errorf("sweep %s point %v: %w", g.Name, j.coords, err)
		}
		if f.forkValid(&cfg) {
			if rerr := sys.Restore(f.snap); rerr == nil {
				resumed[k] = true
			} else {
				sys, err = system.New(cfg, j.wl, g.Scale)
				if err != nil {
					return fmt.Errorf("sweep %s point %v: %w", g.Name, j.coords, err)
				}
			}
		}
		r, err := sys.RunCtx(ctx)
		if err != nil {
			return fmt.Errorf("sweep %s point %v: %w", g.Name, j.coords, err)
		}
		points[i] = newPoint(i, j, &cfg, r)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, ok := range resumed {
		if ok {
			st.ForkResumes++
		} else {
			st.ColdFallbacks++
		}
	}

	res := &Result{Study: g.Name, Scale: g.Scale.String(), Points: points}
	for _, ax := range g.Axes {
		res.AxisNames = append(res.AxisNames, ax.Name)
	}
	return res, st, nil
}
