package sweep

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/store"
	"repro/internal/workload"
)

// TestPrefixSharedMatchesRun is the prefix-sharing correctness property:
// the flowtable study executed with shared prefixes produces a Result
// bit-identical to the plain engine's, while actually forking (the axis
// values beyond each family's leader resume from its checkpoint).
func TestPrefixSharedMatchesRun(t *testing.T) {
	g := FlowTableStudy(workload.ScaleTiny)
	want, err := Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := RunPrefixShared(context.Background(), g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("prefix-shared result diverged from plain run:\n got: %+v\nwant: %+v", got, want)
	}
	// One family per (workload, scheme) pair: MaxFlows is prefix-excluded.
	if st.Families != 2 {
		t.Errorf("families = %d, want 2", st.Families)
	}
	if st.LeaderRuns != 2 {
		t.Errorf("leader runs = %d, want 2", st.LeaderRuns)
	}
	// lud's prefix never stalls the 64-flow leader table (measured peaks 44
	// and 64), so every non-leader point must fork, none fall back cold.
	if st.ForkResumes != 8 || st.ColdFallbacks != 0 {
		t.Errorf("forks = %d cold = %d, want 8 and 0", st.ForkResumes, st.ColdFallbacks)
	}
}

// TestPrefixSharedSnapshotStore checks checkpoint persistence: a first
// sweep populates the snapshot store, a second one warm-starts every
// family leader from it and still reproduces the identical Result.
func TestPrefixSharedSnapshotStore(t *testing.T) {
	snaps, err := store.Open(t.TempDir(), store.Options{SegmentPrefix: "snap"})
	if err != nil {
		t.Fatal(err)
	}
	g := FlowTableStudy(workload.ScaleTiny)
	first, st, err := RunPrefixShared(context.Background(), g, nil, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoreHits != 0 || st.LeaderRuns != 2 {
		t.Fatalf("first sweep stats = %+v", st)
	}
	if snaps.Len() != 2 {
		t.Fatalf("snapshot store holds %d checkpoints, want 2", snaps.Len())
	}
	second, st, err := RunPrefixShared(context.Background(), g, nil, snaps)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoreHits != 2 || st.LeaderRuns != 0 {
		t.Fatalf("second sweep stats = %+v (want every leader warm)", st)
	}
	if !reflect.DeepEqual(second, first) {
		t.Error("warm-started sweep diverged from the cold one")
	}
}

// TestPrefixSharedZeroCycleDegenerates checks PrefixCycle == 0 delegates
// to the plain engine with empty stats.
func TestPrefixSharedZeroCycleDegenerates(t *testing.T) {
	g := FlowTableStudy(workload.ScaleTiny)
	g.PrefixCycle = 0
	res, st, err := RunPrefixShared(context.Background(), g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if *st != (PrefixStats{}) {
		t.Errorf("degenerate stats = %+v", st)
	}
	if len(res.Points) != g.Size() {
		t.Errorf("points = %d, want %d", len(res.Points), g.Size())
	}
}
