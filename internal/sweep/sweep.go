// Package sweep is the configuration-sweep engine behind the thesis's
// sensitivity and ablation studies (§5.4 and the design-space grids the
// evaluation chapters imply): it expands a declarative grid of machine
// mutations × workloads × schemes into the cross product of simulation
// points and executes them on a bounded, context-cancellable worker pool
// with fail-fast error propagation and deterministic result ordering.
//
// A grid point is run exactly the way a direct system.New + Run invocation
// would run it — the engine applies the axis mutators to DefaultConfig and
// nothing else — so per-point cycle counts are bit-identical to standalone
// runs with the same configuration (pinned by TestSweepMatchesDirectRuns).
package sweep

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/system"
	"repro/internal/workload"
)

// Mutator applies one axis value to a machine configuration.
type Mutator func(cfg *system.Config)

// Value is one setting of an axis: a label for reports plus the config
// mutation it denotes.
type Value struct {
	Label string
	Apply Mutator
}

// Axis is one named sweep dimension.
type Axis struct {
	Name   string
	Values []Value
}

// Ints builds an axis over integer settings; apply stores one value into
// the config.
func Ints(name string, vals []int, apply func(cfg *system.Config, v int)) Axis {
	ax := Axis{Name: name}
	for _, v := range vals {
		v := v
		ax.Values = append(ax.Values, Value{
			Label: strconv.Itoa(v),
			Apply: func(cfg *system.Config) { apply(cfg, v) },
		})
	}
	return ax
}

// Grid declares a sweep: the cross product of every axis value combination
// with every (workload, scheme) pair, all at one input scale.
type Grid struct {
	Name      string
	Scale     workload.Scale
	Workloads []string
	Schemes   []system.Scheme
	Axes      []Axis
	// Workers bounds pool parallelism; 0 means GOMAXPROCS.
	Workers int
	// SimShards selects the simulation kernel for every grid point that no
	// axis pins: 0 (default) keeps the sequential kernel,
	// system.KernelAuto resolves per point against the budget capacity,
	// positive values force that shard count. Results are bit-identical in
	// every case — the kernel choice is outside the config hash — so this
	// only trades intra-point against run-level parallelism.
	SimShards int
	// PrefixCycle, when nonzero, marks the cycle up to which grid points
	// whose configurations are prefix-compatible (system.Config.PrefixHash)
	// provably simulate identically. RunPrefixShared checkpoints one family
	// leader there and forks the rest from the snapshot; plain Run ignores
	// it.
	PrefixCycle uint64
}

// Size returns the number of points the grid expands to.
func (g *Grid) Size() int {
	n := len(g.Workloads) * len(g.Schemes)
	for _, ax := range g.Axes {
		n *= len(ax.Values)
	}
	return n
}

// Point is one executed grid point: its coordinates plus the measurements
// every study reports (cycles, IPC, flow-table peak, operand stalls, data
// movement, energy).
type Point struct {
	Index      int      `json:"index"`
	Coords     []string `json:"coords"` // one label per axis, grid order
	Workload   string   `json:"workload"`
	Scheme     string   `json:"scheme"`
	ConfigHash string   `json:"config_hash"`

	Cycles           uint64  `json:"cycles"`
	Instructions     uint64  `json:"instructions"`
	IPC              float64 `json:"ipc"`
	FlowPeak         int     `json:"flow_peak"`
	FlowTableStalls  uint64  `json:"flow_table_stalls"`
	OperandBufStalls uint64  `json:"operand_buf_stalls"`
	MovementBytes    uint64  `json:"movement_bytes"`
	ActiveBytes      uint64  `json:"active_bytes"`
	EnergyJ          float64 `json:"energy_j"`
	EDP              float64 `json:"edp"`
}

// Result is a completed sweep, points in deterministic grid order (axes
// outermost-first, then workload, then scheme).
type Result struct {
	Study     string   `json:"study"`
	Scale     string   `json:"scale"`
	AxisNames []string `json:"axis_names"`
	Points    []Point  `json:"points"`
}

// point is one expanded grid coordinate before execution.
type jobSpec struct {
	coords   []string
	mutators []Mutator
	wl       string
	scheme   system.Scheme
}

// expand enumerates the grid deterministically: axis values vary slowest in
// declaration order, the (workload, scheme) pair fastest.
func (g *Grid) expand() []jobSpec {
	specs := []jobSpec{{}}
	for _, ax := range g.Axes {
		var next []jobSpec
		for _, s := range specs {
			for _, v := range ax.Values {
				next = append(next, jobSpec{
					coords:   append(append([]string(nil), s.coords...), v.Label),
					mutators: append(append([]Mutator(nil), s.mutators...), v.Apply),
				})
			}
		}
		specs = next
	}
	var jobs []jobSpec
	for _, s := range specs {
		for _, wl := range g.Workloads {
			for _, sch := range g.Schemes {
				j := s
				j.wl = wl
				j.scheme = sch
				jobs = append(jobs, j)
			}
		}
	}
	return jobs
}

// Run executes the grid on a private worker budget sized by g.Workers. On
// the first failing point (or context cancellation) the pool cancels:
// queued points never start and the error propagates with the point's
// coordinates attached.
func Run(ctx context.Context, g Grid) (*Result, error) {
	return RunOn(ctx, g, NewBudget(g.Workers))
}

// RunOn executes the grid drawing workers from the shared budget b (nil
// means a private GOMAXPROCS-sized budget), so a sweep scheduled by the
// service layer competes for the same slots as every other job instead of
// oversubscribing the machine.
func RunOn(ctx context.Context, g Grid, b *Budget) (*Result, error) {
	if len(g.Workloads) == 0 || len(g.Schemes) == 0 {
		return nil, fmt.Errorf("sweep %s: grid needs at least one workload and one scheme", g.Name)
	}
	for _, ax := range g.Axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep %s: axis %q has no values (would expand to an empty grid)", g.Name, ax.Name)
		}
	}
	jobs := g.expand()
	// Configs are built up front so each job's budget weight — the resolved
	// sharded worker count — is known before its slots are acquired. Auto
	// kernel knobs resolve against the whole budget cap: with grid points
	// outnumbering slots, run-level parallelism beats intra-run parallelism,
	// and the weighted acquisition below keeps the combination bounded
	// either way.
	if b == nil {
		b = NewBudget(0)
	}
	cfgs := make([]system.Config, len(jobs))
	for i, j := range jobs {
		cfg := system.DefaultConfig(j.scheme)
		for _, mut := range j.mutators {
			mut(&cfg)
		}
		if g.SimShards != 0 && cfg.Shards == 0 {
			cfg.Shards = g.SimShards
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep %s point %v %s/%s: %w", g.Name, j.coords, j.scheme, j.wl, err)
		}
		system.ResolveKernel(&cfg, b.Cap())
		cfgs[i] = cfg
	}
	points := make([]Point, len(jobs))
	weight := func(i int) int { return cfgs[i].ResolvedWorkers() }
	err := RunWeightedJobsOn(ctx, len(jobs), b, weight, func(ctx context.Context, i int) error {
		j := jobs[i]
		cfg := cfgs[i]
		sys, err := system.New(cfg, j.wl, g.Scale)
		if err != nil {
			return fmt.Errorf("sweep %s point %v: %w", g.Name, j.coords, err)
		}
		r, err := sys.RunCtx(ctx)
		if err != nil {
			return fmt.Errorf("sweep %s point %v: %w", g.Name, j.coords, err)
		}
		points[i] = newPoint(i, j, &cfg, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Study: g.Name, Scale: g.Scale.String(), Points: points}
	for _, ax := range g.Axes {
		res.AxisNames = append(res.AxisNames, ax.Name)
	}
	return res, nil
}

// PointRunner executes one expanded grid point's simulation: cfg is the
// fully mutated, validated configuration (its Scheme field matches the
// point's scheme). Implementations must be deterministic in cfg — the grid
// engine assumes any two executions of a point produce identical Results.
type PointRunner func(ctx context.Context, cfg *system.Config, wl string, scale workload.Scale) (*system.Results, error)

// RunVia executes the grid like RunOn but delegates each point's simulation
// to run — the cluster coordinator dispatches points to remote workers this
// way, so a sweep survives worker loss without losing grid order or
// determinism. parallel bounds concurrent in-flight points (<= 0 means
// g.Workers, then GOMAXPROCS); the runner is expected to provide its own
// backpressure (a dispatcher queues on fleet capacity), so the bound only
// caps goroutines. Kernel knobs are left for the executing side to resolve:
// results are bit-identical regardless (the kernel choice is outside the
// config hash).
func RunVia(ctx context.Context, g Grid, parallel int, run PointRunner) (*Result, error) {
	if len(g.Workloads) == 0 || len(g.Schemes) == 0 {
		return nil, fmt.Errorf("sweep %s: grid needs at least one workload and one scheme", g.Name)
	}
	for _, ax := range g.Axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep %s: axis %q has no values (would expand to an empty grid)", g.Name, ax.Name)
		}
	}
	jobs := g.expand()
	cfgs := make([]system.Config, len(jobs))
	for i, j := range jobs {
		cfg := system.DefaultConfig(j.scheme)
		for _, mut := range j.mutators {
			mut(&cfg)
		}
		if g.SimShards != 0 && cfg.Shards == 0 {
			cfg.Shards = g.SimShards
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep %s point %v %s/%s: %w", g.Name, j.coords, j.scheme, j.wl, err)
		}
		cfgs[i] = cfg
	}
	if parallel <= 0 {
		parallel = g.Workers
	}
	points := make([]Point, len(jobs))
	err := RunJobsOn(ctx, len(jobs), NewBudget(parallel), func(ctx context.Context, i int) error {
		j := jobs[i]
		r, err := run(ctx, &cfgs[i], j.wl, g.Scale)
		if err != nil {
			return fmt.Errorf("sweep %s point %v: %w", g.Name, j.coords, err)
		}
		points[i] = newPoint(i, j, &cfgs[i], r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Study: g.Name, Scale: g.Scale.String(), Points: points}
	for _, ax := range g.Axes {
		res.AxisNames = append(res.AxisNames, ax.Name)
	}
	return res, nil
}

// newPoint records one completed grid point's measurements.
func newPoint(i int, j jobSpec, cfg *system.Config, r *system.Results) Point {
	return Point{
		Index:            i,
		Coords:           j.coords,
		Workload:         j.wl,
		Scheme:           j.scheme.String(),
		ConfigHash:       cfg.Hash(),
		Cycles:           r.Cycles,
		Instructions:     r.Instructions,
		IPC:              r.IPC,
		FlowPeak:         r.FlowPeak,
		FlowTableStalls:  r.Engine.FlowTableStalls,
		OperandBufStalls: r.Engine.OperandBufStalls,
		MovementBytes:    r.Movement.Total(),
		ActiveBytes:      r.Movement.ActiveReq + r.Movement.ActiveResp,
		EnergyJ:          r.Energy.Total(),
		EDP:              r.EDP,
	}
}
