package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON renders the result as indented JSON.
func WriteJSON(w io.Writer, r *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV renders the result as a flat CSV grid: one row per point, one
// column per axis, then the measurement columns.
func WriteCSV(w io.Writer, r *Result) error {
	cw := csv.NewWriter(w)
	header := append([]string{"index"}, r.AxisNames...)
	header = append(header,
		"workload", "scheme", "config_hash",
		"cycles", "instructions", "ipc",
		"flow_peak", "flow_table_stalls", "operand_buf_stalls",
		"movement_bytes", "active_bytes", "energy_j", "edp")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range r.Points {
		row := append([]string{strconv.Itoa(p.Index)}, p.Coords...)
		row = append(row,
			p.Workload, p.Scheme, p.ConfigHash,
			strconv.FormatUint(p.Cycles, 10),
			strconv.FormatUint(p.Instructions, 10),
			strconv.FormatFloat(p.IPC, 'f', 4, 64),
			strconv.Itoa(p.FlowPeak),
			strconv.FormatUint(p.FlowTableStalls, 10),
			strconv.FormatUint(p.OperandBufStalls, 10),
			strconv.FormatUint(p.MovementBytes, 10),
			strconv.FormatUint(p.ActiveBytes, 10),
			fmt.Sprintf("%.6g", p.EnergyJ),
			fmt.Sprintf("%.6g", p.EDP))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
