// Package isa defines the instruction-stream interface between workloads
// and the timing models, including the Update/Gather ISA extension of §3.1.
//
// Workloads are trace generators: each simulated thread produces a stream of
// instructions that the out-of-order core model executes for timing. Plain
// loads/stores/computes model the host-side code; Update and Gather model
// the extended active instructions that the Message Interface packetizes
// into the memory network.
package isa

import (
	"fmt"
	"math"

	"repro/internal/mem"
)

// ALUOp is the operation code carried by Update packets and flow table
// entries (the op argument of the Update API).
type ALUOp uint8

// Update/Gather operation codes. The reducing codes fold each update's
// value into the flow result; Mov and ConstAssign are active stores with no
// flow state (see DESIGN.md).
const (
	OpNop         ALUOp = iota
	OpAdd               // result += *src1
	OpMac               // result += *src1 * *src2 (multiply-accumulate)
	OpAbsDiffAcc        // result += |*src1 - *src2| (pagerank's abs)
	OpMin               // result = min(result, *src1)
	OpMax               // result = max(result, *src1)
	OpMacSub            // result -= *src1 * *src2 (lud's elimination term)
	OpMov               // *target = *src1 (active store)
	OpConstAssign       // *target = imm   (active store)
)

// String returns the mnemonic.
func (op ALUOp) String() string {
	switch op {
	case OpNop:
		return "nop"
	case OpAdd:
		return "add"
	case OpMac:
		return "mac"
	case OpAbsDiffAcc:
		return "absdiff"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpMacSub:
		return "macsub"
	case OpMov:
		return "mov"
	case OpConstAssign:
		return "const"
	default:
		return fmt.Sprintf("aluop(%d)", uint8(op))
	}
}

// Reducing reports whether the op participates in a flow reduction (needs a
// flow table entry and a Gather), as opposed to an active store.
func (op ALUOp) Reducing() bool {
	switch op {
	case OpAdd, OpMac, OpAbsDiffAcc, OpMin, OpMax, OpMacSub:
		return true
	}
	return false
}

// TwoOperand reports whether the op consumes two memory operands and hence
// needs an operand buffer entry (§3.2.3); single-operand reductions bypass
// the buffer pool.
func (op ALUOp) TwoOperand() bool {
	switch op {
	case OpMac, OpAbsDiffAcc, OpMacSub:
		return true
	}
	return false
}

// Identity returns the reduction identity for the op.
func (op ALUOp) Identity() float64 {
	switch op {
	case OpMin:
		return math.Inf(1)
	case OpMax:
		return math.Inf(-1)
	default:
		return 0
	}
}

// Value computes the per-update value from the fetched operands.
func (op ALUOp) Value(a, b float64) float64 {
	switch op {
	case OpAdd, OpMin, OpMax, OpMov:
		return a
	case OpMac:
		return a * b
	case OpMacSub:
		return -(a * b)
	case OpAbsDiffAcc:
		return math.Abs(a - b)
	default:
		return 0
	}
}

// Combine folds an update value (or a subtree partial result) into an
// accumulator. All reducing ops in the ISA are commutative and associative,
// which is what lets the network aggregate in arbitrary tree order (§2.4.2).
func (op ALUOp) Combine(acc, v float64) float64 {
	switch op {
	case OpAdd, OpMac, OpMacSub, OpAbsDiffAcc:
		return acc + v
	case OpMin:
		return math.Min(acc, v)
	case OpMax:
		return math.Max(acc, v)
	default:
		return acc
	}
}

// Kind discriminates instruction types in a workload trace.
type Kind uint8

// Instruction kinds. KindCompute covers host ALU work (address arithmetic,
// FP math); the memory kinds go through the cache hierarchy; KindUpdate and
// KindGather go to the Message Interface.
const (
	KindCompute Kind = iota
	KindLoad
	KindStore
	KindAtomicAdd // atomically add Value to the float64 at Addr
	KindUpdate
	KindGather
	KindBarrier // synchronize Threads threads (workload phase boundaries)
)

// String returns the mnemonic.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindAtomicAdd:
		return "atomic_add"
	case KindUpdate:
		return "update"
	case KindGather:
		return "gather"
	case KindBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// CompClass selects host compute latency.
type CompClass uint8

// Compute latency classes.
const (
	ClassInt   CompClass = iota // 1-cycle integer/address arithmetic
	ClassFP                     // pipelined FP add class
	ClassFPMul                  // pipelined FP multiply class
)

// Inst is one instruction of a workload trace.
type Inst struct {
	Kind  Kind
	Class CompClass // compute latency class (KindCompute)

	Addr  mem.VAddr // load/store/atomic address
	Value float64   // store/atomic value

	// Update fields (§3.1.1): Update(src1, src2, target, op). Src2 == 0
	// marks a single-operand update. For OpConstAssign, Imm carries the
	// immediate and Src1 is unused.
	Src1, Src2 mem.VAddr
	Target     mem.VAddr
	Op         ALUOp
	Imm        float64

	// Gather fields: Gather(target, num_threads).
	Threads int

	// Count vectorizes an Update over consecutive words: the offload
	// covers operand pairs (Src1+8i, Src2+8i) for i in [0, Count). Zero or
	// one means a scalar update. All elements must stay within one cache
	// block (the §6 "offloading granularity" extension).
	Count int
}

// Stream produces a thread's instructions in program order. Next returns
// ok=false when the thread has finished.
type Stream interface {
	Next() (Inst, bool)
}

// SliceStream replays a pre-built instruction slice.
type SliceStream struct {
	insts []Inst
	pos   int
}

// NewSliceStream wraps insts.
func NewSliceStream(insts []Inst) *SliceStream { return &SliceStream{insts: insts} }

// Next implements Stream.
func (s *SliceStream) Next() (Inst, bool) {
	if s.pos >= len(s.insts) {
		return Inst{}, false
	}
	i := s.insts[s.pos]
	s.pos++
	return i, true
}

// Pos reports how many instructions have been consumed (the replay
// cursor), for checkpointing.
func (s *SliceStream) Pos() int { return s.pos }

// Len reports the total instruction count.
func (s *SliceStream) Len() int { return len(s.insts) }

// SetPos moves the replay cursor (restore path). It panics on an
// out-of-range position; snapshot decoders validate against Len first.
func (s *SliceStream) SetPos(pos int) {
	if pos < 0 || pos > len(s.insts) {
		panic("isa: SliceStream position out of range")
	}
	s.pos = pos
}

// PtrStream is an optional Stream extension that hands out a pointer to the
// next instruction instead of a copy. The pointee is owned by the stream
// and valid only until the following NextPtr/Next call; callers that need
// the instruction longer (a dispatch stash) copy it themselves. The core
// model uses this to avoid copying the ~80-byte Inst once per dispatched
// instruction on its hottest path.
type PtrStream interface {
	NextPtr() (*Inst, bool)
}

// NextPtr implements PtrStream.
func (s *SliceStream) NextPtr() (*Inst, bool) {
	if s.pos >= len(s.insts) {
		return nil, false
	}
	i := &s.insts[s.pos]
	s.pos++
	return i, true
}

// FuncStream adapts a generator function to Stream.
type FuncStream func() (Inst, bool)

// Next implements Stream.
func (f FuncStream) Next() (Inst, bool) { return f() }

// ChainStream concatenates streams, draining each in turn.
type ChainStream struct {
	streams []Stream
}

// NewChainStream concatenates the given streams.
func NewChainStream(streams ...Stream) *ChainStream {
	return &ChainStream{streams: streams}
}

// Next implements Stream.
func (c *ChainStream) Next() (Inst, bool) {
	for len(c.streams) > 0 {
		if in, ok := c.streams[0].Next(); ok {
			return in, true
		}
		c.streams = c.streams[1:]
	}
	return Inst{}, false
}
