package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	reducing := []ALUOp{OpAdd, OpMac, OpAbsDiffAcc, OpMin, OpMax, OpMacSub}
	for _, op := range reducing {
		if !op.Reducing() {
			t.Fatalf("%s must be reducing", op)
		}
	}
	for _, op := range []ALUOp{OpNop, OpMov, OpConstAssign} {
		if op.Reducing() {
			t.Fatalf("%s must not be reducing", op)
		}
	}
	for _, op := range []ALUOp{OpMac, OpAbsDiffAcc, OpMacSub} {
		if !op.TwoOperand() {
			t.Fatalf("%s needs two operands", op)
		}
	}
	for _, op := range []ALUOp{OpAdd, OpMin, OpMax} {
		if op.TwoOperand() {
			t.Fatalf("%s is single-operand", op)
		}
	}
}

func TestOpSemantics(t *testing.T) {
	cases := []struct {
		op   ALUOp
		a, b float64
		want float64
	}{
		{OpAdd, 3, 0, 3},
		{OpMac, 3, 4, 12},
		{OpMacSub, 3, 4, -12},
		{OpAbsDiffAcc, 3, 7, 4},
		{OpAbsDiffAcc, 7, 3, 4},
		{OpMov, 5, 0, 5},
	}
	for _, c := range cases {
		if got := c.op.Value(c.a, c.b); got != c.want {
			t.Fatalf("%s.Value(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
	if OpMin.Combine(3, 5) != 3 || OpMin.Combine(5, 3) != 3 {
		t.Fatal("min combine broken")
	}
	if OpMax.Combine(3, 5) != 5 {
		t.Fatal("max combine broken")
	}
	if OpAdd.Combine(1, 2) != 3 {
		t.Fatal("add combine broken")
	}
}

func TestIdentities(t *testing.T) {
	if OpAdd.Identity() != 0 || OpMac.Identity() != 0 {
		t.Fatal("additive identity must be 0")
	}
	if !math.IsInf(OpMin.Identity(), 1) || !math.IsInf(OpMax.Identity(), -1) {
		t.Fatal("min/max identities wrong")
	}
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		return OpAdd.Combine(OpAdd.Identity(), v) == v &&
			OpMin.Combine(OpMin.Identity(), v) == v &&
			OpMax.Combine(OpMax.Identity(), v) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCombineCommutativeAssociative checks the property §2.4.2 relies on:
// network aggregation in arbitrary tree order must be valid.
func TestCombineCommutativeAssociative(t *testing.T) {
	comm := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		for _, op := range []ALUOp{OpMin, OpMax} {
			if op.Combine(a, b) != op.Combine(b, a) {
				return false
			}
		}
		return OpAdd.Combine(a, b) == OpAdd.Combine(b, a)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Fatal("commutativity:", err)
	}
	assoc := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		for _, op := range []ALUOp{OpMin, OpMax} {
			if op.Combine(op.Combine(a, b), c) != op.Combine(a, op.Combine(b, c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Fatal("associativity:", err)
	}
}

func TestSliceStream(t *testing.T) {
	s := NewSliceStream([]Inst{{Kind: KindLoad}, {Kind: KindStore}})
	a, ok := s.Next()
	if !ok || a.Kind != KindLoad {
		t.Fatal("first inst wrong")
	}
	b, ok := s.Next()
	if !ok || b.Kind != KindStore {
		t.Fatal("second inst wrong")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream should be exhausted")
	}
}

func TestChainStream(t *testing.T) {
	c := NewChainStream(
		NewSliceStream([]Inst{{Kind: KindLoad}}),
		NewSliceStream(nil),
		NewSliceStream([]Inst{{Kind: KindGather}}),
	)
	var kinds []Kind
	for {
		in, ok := c.Next()
		if !ok {
			break
		}
		kinds = append(kinds, in.Kind)
	}
	if len(kinds) != 2 || kinds[0] != KindLoad || kinds[1] != KindGather {
		t.Fatalf("chained kinds = %v", kinds)
	}
}

func TestStringsAreStable(t *testing.T) {
	if OpMac.String() != "mac" || KindUpdate.String() != "update" {
		t.Fatal("mnemonics changed")
	}
	if ALUOp(200).String() == "" || Kind(200).String() == "" {
		t.Fatal("unknown values must still print")
	}
}
