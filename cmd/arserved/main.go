// Command arserved is the simulation-as-a-service daemon: an HTTP/JSON
// front end over the Active-Routing simulator with a content-addressed
// result cache, singleflight de-duplication and one shared worker budget
// for every kind of request.
//
// Usage:
//
//	arserved -addr :8080                 # serve with GOMAXPROCS workers
//	arserved -addr :8080 -workers 4
//	arserved -addr :8080 -store /var/lib/arserved
//
// With -store, every computed result is persisted to a crash-safe
// append-only store and warm-loaded at the next boot, so a restarted
// daemon serves its whole history as cache hits without re-simulating.
// With -snapshots, prefix-shared sweep checkpoints persist the same way:
// a repeated study warm-starts its family leaders from disk instead of
// re-simulating their shared prefixes.
//
// Endpoints:
//
//	POST /run           {"workload":"mac","scheme":"ARF-tid","scale":"tiny"}
//	POST /sweep         {"study":"flowtable","scale":"tiny"}
//	GET  /figures/{id}  e.g. /figures/5.1a?scale=tiny
//	GET  /healthz       liveness probe
//	GET  /stats         cache hit rate, in-flight jobs, queue depth
//
// On SIGTERM/SIGINT the daemon drains gracefully: the listener closes, new
// connections are refused, in-flight requests (including their running
// simulations) complete, then the process exits. A second signal, or the
// drain deadline expiring, aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served via -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/system"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "shared simulation worker budget (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "result cache shard count (0 = 16)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown deadline")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")
	simShards := flag.String("simshards", "0", "run jobs without a pinned kernel on the sharded simulation kernel with this shard count (0 = sequential, \"auto\" = resolve per job from topology and free budget capacity); a sharded job holds its resolved worker count in the shared budget")
	storeDir := flag.String("store", "", "directory for the crash-safe result store; empty disables persistence")
	snapDir := flag.String("snapshots", "", "directory for the checkpoint store backing prefix-shared sweeps (warm starts across restarts); empty keeps sweep checkpoints in memory only")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock deadline (0 = none); expired jobs abort and release their worker slots")
	maxQueue := flag.Int("max-queue", 0, "shed new-simulation requests with 503 once this many jobs wait for workers (0 = never shed)")
	flag.Parse()

	if *pprofAddr != "" {
		// The pprof handlers register on http.DefaultServeMux at import
		// time; serve that mux on its own listener so profiling stays off
		// the public API address.
		go func() {
			fmt.Fprintf(os.Stderr, "arserved: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "arserved: pprof:", err)
			}
		}()
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "arserved: opening result store:", err)
			os.Exit(1)
		}
		ss := st.Stats()
		fmt.Fprintf(os.Stderr, "arserved: result store %s (%d records, %d bytes", *storeDir, ss.Records, ss.BytesOnDisk)
		if ss.CorruptRecords > 0 {
			fmt.Fprintf(os.Stderr, ", %d corrupt records quarantined", ss.CorruptRecords)
		}
		fmt.Fprintln(os.Stderr, ")")
	}

	var snaps *store.Store
	if *snapDir != "" {
		var err error
		snaps, err = store.Open(*snapDir, store.Options{SegmentPrefix: "snap"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "arserved: opening snapshot store:", err)
			os.Exit(1)
		}
		ss := snaps.Stats()
		fmt.Fprintf(os.Stderr, "arserved: snapshot store %s (%d checkpoints, %d bytes)\n", *snapDir, ss.Records, ss.BytesOnDisk)
	}

	simSh, err := system.ParseKernel(*simShards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arserved: -simshards:", err)
		os.Exit(2)
	}

	svc := service.New(service.Options{
		Workers:    *workers,
		Shards:     *shards,
		SimShards:  simSh,
		Store:      st,
		JobTimeout: *jobTimeout,
		MaxQueue:   *maxQueue,
		Snapshots:  snaps,
	})
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "arserved: listening on %s (workers=%d)\n", *addr, svc.Budget().Cap())

	select {
	case err := <-errc:
		// Listener failed before any signal (e.g. port in use).
		fmt.Fprintln(os.Stderr, "arserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "arserved: draining (in-flight requests run to completion)")
	// Draining sheds requests that would start a new simulation while
	// already-cached results keep serving until the listener closes.
	svc.SetDraining(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "arserved: drain aborted:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "arserved:", err)
		os.Exit(1)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "arserved: closing result store:", err)
		}
	}
	if snaps != nil {
		if err := snaps.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "arserved: closing snapshot store:", err)
		}
	}
	stats := svc.Stats()
	fmt.Fprintf(os.Stderr, "arserved: drained cleanly (served %d sims, %d cache hits, hit rate %.2f)\n",
		stats.SimsCompleted, stats.CacheHits, stats.HitRate)
}
