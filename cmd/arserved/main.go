// Command arserved is the simulation-as-a-service daemon: an HTTP/JSON
// front end over the Active-Routing simulator with a content-addressed
// result cache, singleflight de-duplication and one shared worker budget
// for every kind of request.
//
// Usage:
//
//	arserved -addr :8080                 # serve with GOMAXPROCS workers
//	arserved -addr :8080 -workers 4
//	arserved -addr :8080 -store /var/lib/arserved
//
// With -store, every computed result is persisted to a crash-safe
// append-only store and warm-loaded at the next boot, so a restarted
// daemon serves its whole history as cache hits without re-simulating.
// With -snapshots, prefix-shared sweep checkpoints persist the same way:
// a repeated study warm-starts its family leaders from disk instead of
// re-simulating their shared prefixes.
//
// Endpoints:
//
//	POST /run           {"workload":"mac","scheme":"ARF-tid","scale":"tiny"}
//	POST /sweep         {"study":"flowtable","scale":"tiny"}
//	GET  /figures/{id}  e.g. /figures/5.1a?scale=tiny
//	GET  /healthz       liveness probe
//	GET  /stats         cache hit rate, in-flight jobs, queue depth
//
// On SIGTERM/SIGINT the daemon drains gracefully: the listener closes, new
// connections are refused, in-flight requests (including their running
// simulations) complete, then the process exits. A second signal, or the
// drain deadline expiring, aborts immediately.
//
// Cluster mode (DESIGN.md "Cluster & supervision"): the same binary runs
// as a coordinator fronting a worker fleet, or as a worker joining one.
//
//	arserved -mode=coordinator -addr :8090 -store /var/lib/arserved
//	arserved -mode=worker -join http://coord:8090 -addr :8081
//
// The coordinator owns the full HTTP surface and the durable stores, and
// leases each simulation job to a worker; expired leases (crashed,
// partitioned or straggling workers) re-dispatch automatically, and with
// zero live workers the coordinator keeps serving cached results while
// shedding only new-simulation traffic. In coordinator mode -job-timeout
// bounds each lease attempt rather than the whole request. A worker drains
// on SIGTERM: unstarted leases hand back immediately, in-flight
// simulations finish and report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served via -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/system"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	mode := flag.String("mode", "", `process role: "" single-process, "coordinator" dispatches jobs to a worker fleet, "worker" joins a coordinator`)
	join := flag.String("join", "", "worker mode: coordinator base URL, e.g. http://127.0.0.1:8090")
	advertise := flag.String("advertise", "", "worker mode: base URL the coordinator dispatches to (default derives from -addr on 127.0.0.1)")
	workerID := flag.String("worker-id", "", "worker mode: stable worker identity (default hostname-pid); reusing an id after restart expires the old incarnation's leases immediately")
	leaseTTL := flag.Duration("lease-ttl", 0, "coordinator mode: how long a dispatched job lease survives without a renewing worker heartbeat (0 = 10s)")
	heartbeat := flag.Duration("heartbeat", 0, "worker mode: heartbeat interval override (0 = interval the coordinator advertises at registration)")
	chaosJobDelay := flag.Duration("chaos-job-delay", 0, "worker mode: inject this delay before every simulation (chaos testing: slow-worker straggler)")
	workers := flag.Int("workers", 0, "shared simulation worker budget (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "result cache shard count (0 = 16)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown deadline")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")
	simShards := flag.String("simshards", "0", "run jobs without a pinned kernel on the sharded simulation kernel with this shard count (0 = sequential, \"auto\" = resolve per job from topology and free budget capacity); a sharded job holds its resolved worker count in the shared budget")
	storeDir := flag.String("store", "", "directory for the crash-safe result store; empty disables persistence")
	snapDir := flag.String("snapshots", "", "directory for the checkpoint store backing prefix-shared sweeps (warm starts across restarts); empty keeps sweep checkpoints in memory only")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock deadline (0 = none); expired jobs abort and release their worker slots")
	maxQueue := flag.Int("max-queue", 0, "shed new-simulation requests with 503 once this many jobs wait for workers (0 = never shed)")
	flag.Parse()

	switch *mode {
	case "", "coordinator":
	case "worker":
		runWorker(workerConfig{
			addr:      *addr,
			join:      *join,
			advertise: *advertise,
			id:        *workerID,
			workers:   *workers,
			simShards: *simShards,
			timeout:   *jobTimeout,
			heartbeat: *heartbeat,
			jobDelay:  *chaosJobDelay,
			drain:     *drain,
		})
		return
	default:
		fmt.Fprintf(os.Stderr, "arserved: unknown -mode %q (want \"\", coordinator or worker)\n", *mode)
		os.Exit(2)
	}

	if *pprofAddr != "" {
		// The pprof handlers register on http.DefaultServeMux at import
		// time; serve that mux on its own listener so profiling stays off
		// the public API address.
		go func() {
			fmt.Fprintf(os.Stderr, "arserved: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "arserved: pprof:", err)
			}
		}()
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "arserved: opening result store:", err)
			os.Exit(1)
		}
		ss := st.Stats()
		fmt.Fprintf(os.Stderr, "arserved: result store %s (%d records, %d bytes", *storeDir, ss.Records, ss.BytesOnDisk)
		if ss.CorruptRecords > 0 {
			fmt.Fprintf(os.Stderr, ", %d corrupt records quarantined", ss.CorruptRecords)
		}
		fmt.Fprintln(os.Stderr, ")")
	}

	var snaps *store.Store
	if *snapDir != "" {
		var err error
		snaps, err = store.Open(*snapDir, store.Options{SegmentPrefix: "snap"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "arserved: opening snapshot store:", err)
			os.Exit(1)
		}
		ss := snaps.Stats()
		fmt.Fprintf(os.Stderr, "arserved: snapshot store %s (%d checkpoints, %d bytes)\n", *snapDir, ss.Records, ss.BytesOnDisk)
	}

	simSh, err := system.ParseKernel(*simShards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arserved: -simshards:", err)
		os.Exit(2)
	}

	// Coordinator mode swaps the execution seam: jobs lease out to the
	// worker fleet instead of running in-process, and -job-timeout becomes
	// the per-attempt lease cap (a straggling attempt re-dispatches rather
	// than failing the request).
	var coord *cluster.Coordinator
	svcTimeout := *jobTimeout
	if *mode == "coordinator" {
		coord = cluster.NewCoordinator(cluster.CoordinatorOptions{
			LeaseTTL:       *leaseTTL,
			AttemptTimeout: *jobTimeout,
		})
		defer coord.Close()
		svcTimeout = 0
	}

	svc := service.New(service.Options{
		Workers:    *workers,
		Shards:     *shards,
		SimShards:  simSh,
		Store:      st,
		JobTimeout: svcTimeout,
		MaxQueue:   *maxQueue,
		Snapshots:  snaps,
		Executor:   executorOrNil(coord),
	})
	mux := http.NewServeMux()
	svc.Register(mux)
	if coord != nil {
		coord.Register(mux)
		fmt.Fprintln(os.Stderr, "arserved: coordinator mode (workers join via /cluster/register)")
	}
	srv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "arserved: listening on %s (workers=%d)\n", *addr, svc.Budget().Cap())

	select {
	case err := <-errc:
		// Listener failed before any signal (e.g. port in use).
		fmt.Fprintln(os.Stderr, "arserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "arserved: draining (in-flight requests run to completion)")
	// Draining sheds requests that would start a new simulation while
	// already-cached results keep serving until the listener closes.
	svc.SetDraining(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "arserved: drain aborted:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "arserved:", err)
		os.Exit(1)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "arserved: closing result store:", err)
		}
	}
	if snaps != nil {
		if err := snaps.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "arserved: closing snapshot store:", err)
		}
	}
	stats := svc.Stats()
	fmt.Fprintf(os.Stderr, "arserved: drained cleanly (served %d sims, %d cache hits, hit rate %.2f)\n",
		stats.SimsCompleted, stats.CacheHits, stats.HitRate)
}

// executorOrNil avoids the typed-nil-in-interface trap: a nil *Coordinator
// must reach service.New as a nil interface so the Local default applies.
func executorOrNil(c *cluster.Coordinator) service.Executor {
	if c == nil {
		return nil
	}
	return c
}

// workerConfig carries the worker-mode flag subset.
type workerConfig struct {
	addr      string
	join      string
	advertise string
	id        string
	workers   int
	simShards string
	timeout   time.Duration
	heartbeat time.Duration
	jobDelay  time.Duration
	drain     time.Duration
}

// runWorker is worker mode's whole main: serve the dispatch surface, join
// the coordinator, and on SIGTERM drain — hand unstarted leases back,
// finish in-flight simulations — before exiting.
func runWorker(cfg workerConfig) {
	if cfg.join == "" {
		fmt.Fprintln(os.Stderr, "arserved: -mode=worker requires -join <coordinator URL>")
		os.Exit(2)
	}
	simSh, err := system.ParseKernel(cfg.simShards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arserved: -simshards:", err)
		os.Exit(2)
	}
	advertise := cfg.advertise
	if advertise == "" {
		// A bare ":8081" listen address advertises the loopback form; any
		// multi-host deployment must say -advertise explicitly.
		if len(cfg.addr) > 0 && cfg.addr[0] == ':' {
			advertise = "http://127.0.0.1" + cfg.addr
		} else {
			advertise = "http://" + cfg.addr
		}
	}
	id := cfg.id
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w, err := cluster.NewWorker(cluster.WorkerOptions{
		ID:          id,
		Coordinator: cfg.join,
		Advertise:   advertise,
		Workers:     cfg.workers,
		SimShards:   simSh,
		JobTimeout:  cfg.timeout,
		Heartbeat:   cfg.heartbeat,
		JobDelay:    cfg.jobDelay,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arserved:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w.Start(ctx)
	defer w.Stop()

	srv := &http.Server{Addr: cfg.addr, Handler: w.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "arserved: worker %s on %s (advertising %s, joining %s)\n", id, cfg.addr, advertise, cfg.join)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "arserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintln(os.Stderr, "arserved: worker draining (unstarted leases hand back, in-flight simulations finish)")
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	w.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	_ = srv.Shutdown(shutCtx)
	fmt.Fprintln(os.Stderr, "arserved: worker drained")
}
