// Command arsim runs one workload on one machine configuration and prints
// the run's measurements.
//
// Usage:
//
//	arsim -scheme ARF-tid -workload mac -scale small
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	activerouting "repro"
)

func parseScheme(s string) (activerouting.Scheme, error) {
	for _, sch := range append(activerouting.Schemes(), activerouting.SchemeARFtidAdaptive, activerouting.SchemeARFea) {
		if strings.EqualFold(sch.String(), s) {
			return sch, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q (want DRAM, HMC, ART, ARF-tid, ARF-addr, ARF-tid-adaptive)", s)
}

func main() {
	schemeFlag := flag.String("scheme", "ARF-tid", "machine configuration (DRAM, HMC, ART, ARF-tid, ARF-addr, ARF-tid-adaptive)")
	wlFlag := flag.String("workload", "mac", "workload (backprop, lud, pagerank, sgemm, spmv, reduce, rand_reduce, mac, rand_mac, lud_phase)")
	scaleFlag := flag.String("scale", "small", "input scale (tiny, small, medium)")
	shardsFlag := flag.Int("shards", 0, "sharded simulation kernel: tile/cube groups per side (0 = sequential kernel; results are bit-identical)")
	workersFlag := flag.Int("workers", 0, "sharded kernel worker threads (0 = shards)")
	flag.Parse()

	scheme, err := parseScheme(*schemeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arsim:", err)
		os.Exit(2)
	}
	scale, err := activerouting.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arsim:", err)
		os.Exit(2)
	}

	cfg := activerouting.DefaultConfig(scheme)
	cfg.Shards, cfg.Workers = *shardsFlag, *workersFlag
	sys, err := activerouting.NewSystem(cfg, *wlFlag, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arsim:", err)
		os.Exit(1)
	}
	res, err := sys.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "arsim:", err)
		os.Exit(1)
	}

	fmt.Printf("scheme            %s\n", res.Scheme)
	fmt.Printf("workload          %s\n", res.Workload)
	fmt.Printf("cycles            %d\n", res.Cycles)
	fmt.Printf("instructions      %d\n", res.Instructions)
	fmt.Printf("IPC               %.3f\n", res.IPC)
	fmt.Printf("verification      passed\n")
	if res.Coord.Updates > 0 {
		req, stall, resp := res.Breakdown.Means()
		fmt.Printf("updates offloaded %d (committed in network: %d)\n", res.Coord.Updates, res.Engine.UpdatesCommitted)
		fmt.Printf("update roundtrip  req=%.1f stall=%.1f resp=%.1f cycles\n", req, stall, resp)
		fmt.Printf("flows completed   %d (peak concurrent per cube: %d)\n", res.Coord.FlowsComplete, res.FlowPeak)
		fmt.Printf("bypassed operands %d (single-operand optimization)\n", res.Engine.SingleOpBypasses)
	}
	fmt.Printf("data movement     norm_req=%d active_req=%d norm_resp=%d active_resp=%d bytes\n",
		res.Movement.NormReq, res.Movement.ActiveReq, res.Movement.NormResp, res.Movement.ActiveResp)
	fmt.Printf("energy            cache=%.3g memory=%.3g network=%.3g J (total %.3g)\n",
		res.Energy.CacheJ, res.Energy.MemoryJ, res.Energy.NetworkJ, res.Energy.Total())
	fmt.Printf("EDP               %.3g J*s\n", res.EDP)
}
