// Command arsim runs one workload on one machine configuration and prints
// the run's measurements.
//
// Usage:
//
//	arsim -scheme ARF-tid -workload mac -scale small
//	arsim -scheme ARF-tid -workload lud -checkpoint-at 5000 -checkpoint-file run.ckpt
//	arsim -scheme ARF-tid -workload lud -resume-from run.ckpt
//
// A checkpointed run stops at the first quiescent point at or after the
// requested cycle and writes the machine snapshot to -checkpoint-file; a
// resumed run restores it into an identically configured machine and
// continues, producing measurements bit-identical to an uninterrupted run.
// If the run completes before any quiescent point, no checkpoint is
// written and the final measurements print as usual.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	activerouting "repro"
)

func parseScheme(s string) (activerouting.Scheme, error) {
	for _, sch := range append(activerouting.Schemes(), activerouting.SchemeARFtidAdaptive, activerouting.SchemeARFea) {
		if strings.EqualFold(sch.String(), s) {
			return sch, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q (want DRAM, HMC, ART, ARF-tid, ARF-addr, ARF-tid-adaptive)", s)
}

func main() {
	schemeFlag := flag.String("scheme", "ARF-tid", "machine configuration (DRAM, HMC, ART, ARF-tid, ARF-addr, ARF-tid-adaptive)")
	wlFlag := flag.String("workload", "mac", "workload (backprop, lud, pagerank, sgemm, spmv, reduce, rand_reduce, mac, rand_mac, lud_phase)")
	scaleFlag := flag.String("scale", "small", "input scale (tiny, small, medium)")
	shardsFlag := flag.String("shards", "0", "sharded simulation kernel: tile/cube groups per side (0 = sequential kernel, \"auto\" = resolve from topology and GOMAXPROCS; results are bit-identical)")
	workersFlag := flag.String("workers", "0", "sharded kernel worker threads (0 = shards, \"auto\" = resolve with -shards)")
	ckptAt := flag.Uint64("checkpoint-at", 0, "snapshot the machine at the first quiescent point at or after this cycle and exit (0 = run to completion)")
	ckptFile := flag.String("checkpoint-file", "", "file the -checkpoint-at snapshot is written to (required with -checkpoint-at)")
	resumeFrom := flag.String("resume-from", "", "restore a -checkpoint-at snapshot from this file and continue the run")
	flag.Parse()

	scheme, err := parseScheme(*schemeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arsim:", err)
		os.Exit(2)
	}
	scale, err := activerouting.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arsim:", err)
		os.Exit(2)
	}

	if *ckptAt > 0 && *ckptFile == "" {
		fmt.Fprintln(os.Stderr, "arsim: -checkpoint-at needs -checkpoint-file")
		os.Exit(2)
	}
	if *ckptAt > 0 && *resumeFrom != "" {
		fmt.Fprintln(os.Stderr, "arsim: -checkpoint-at and -resume-from are mutually exclusive")
		os.Exit(2)
	}

	cfg := activerouting.DefaultConfig(scheme)
	if cfg.Shards, err = activerouting.ParseKernel(*shardsFlag); err != nil {
		fmt.Fprintln(os.Stderr, "arsim: -shards:", err)
		os.Exit(2)
	}
	if cfg.Workers, err = activerouting.ParseKernel(*workersFlag); err != nil {
		fmt.Fprintln(os.Stderr, "arsim: -workers:", err)
		os.Exit(2)
	}
	sys, err := activerouting.NewSystem(cfg, *wlFlag, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arsim:", err)
		os.Exit(1)
	}
	if *resumeFrom != "" {
		blob, err := os.ReadFile(*resumeFrom)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arsim:", err)
			os.Exit(1)
		}
		if err := sys.Restore(blob); err != nil {
			fmt.Fprintln(os.Stderr, "arsim: restoring", *resumeFrom+":", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "arsim: resumed from %s\n", *resumeFrom)
	}
	if *ckptAt > 0 {
		snap, err := sys.RunToCheckpoint(context.Background(), *ckptAt, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arsim:", err)
			os.Exit(1)
		}
		if snap != nil {
			if err := os.WriteFile(*ckptFile, snap, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "arsim:", err)
				os.Exit(1)
			}
			fmt.Printf("checkpoint        %s (%d bytes)\n", *ckptFile, len(snap))
			fmt.Printf("verification      deferred (resume with -resume-from %s)\n", *ckptFile)
			return
		}
		fmt.Fprintln(os.Stderr, "arsim: run completed before any quiescent point; no checkpoint written")
	}
	res, err := sys.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "arsim:", err)
		os.Exit(1)
	}

	fmt.Printf("scheme            %s\n", res.Scheme)
	fmt.Printf("workload          %s\n", res.Workload)
	fmt.Printf("cycles            %d\n", res.Cycles)
	fmt.Printf("instructions      %d\n", res.Instructions)
	fmt.Printf("IPC               %.3f\n", res.IPC)
	fmt.Printf("verification      passed\n")
	if res.Coord.Updates > 0 {
		req, stall, resp := res.Breakdown.Means()
		fmt.Printf("updates offloaded %d (committed in network: %d)\n", res.Coord.Updates, res.Engine.UpdatesCommitted)
		fmt.Printf("update roundtrip  req=%.1f stall=%.1f resp=%.1f cycles\n", req, stall, resp)
		fmt.Printf("flows completed   %d (peak concurrent per cube: %d)\n", res.Coord.FlowsComplete, res.FlowPeak)
		fmt.Printf("bypassed operands %d (single-operand optimization)\n", res.Engine.SingleOpBypasses)
	}
	fmt.Printf("data movement     norm_req=%d active_req=%d norm_resp=%d active_resp=%d bytes\n",
		res.Movement.NormReq, res.Movement.ActiveReq, res.Movement.NormResp, res.Movement.ActiveResp)
	fmt.Printf("energy            cache=%.3g memory=%.3g network=%.3g J (total %.3g)\n",
		res.Energy.CacheJ, res.Energy.MemoryJ, res.Energy.NetworkJ, res.Energy.Total())
	fmt.Printf("EDP               %.3g J*s\n", res.EDP)
}
