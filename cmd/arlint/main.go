// Command arlint runs the repository's invariant analyzers over Go
// packages and exits non-zero if any diagnostic is reported. It is the
// static half of the correctness story: what the golden matrix, the
// determinism tests and the allocs/op ceiling catch at runtime, arlint
// catches in review.
//
//	arlint ./...          # whole tree (the CI invocation)
//	arlint ./internal/sim # one package
//	arlint -list          # describe the analyzers
//
// The four analyzers and the //ar: annotation grammar are documented in
// DESIGN.md "Static invariants".
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/hashcov"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/load"
	"repro/internal/analysis/poolown"
)

func main() {
	listFlag := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: arlint [-list] [-only name,...] [packages]\n\n"+
				"Runs the repository's static invariant checkers "+
				"(determinism, poolown, hotpath, hashcov)\nover the given "+
				"go-list package patterns (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := []*analysis.Analyzer{
		determinism.Analyzer,
		poolown.Analyzer,
		hotpath.Analyzer,
		hashcov.Analyzer,
	}
	if *listFlag {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range splitComma(*only) {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "arlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := load.ModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	units, err := load.New(root).Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(units, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "arlint: %d issue(s) in %d package(s)\n", len(diags), len(units))
		os.Exit(1)
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arlint:", err)
	os.Exit(2)
}
