// Command arsweep runs a configuration sweep (sensitivity/ablation study)
// and emits the result grid as JSON and/or CSV.
//
// Usage:
//
//	arsweep -study flowtable -scale tiny             # JSON + CSV to stdout
//	arsweep -study linkbw -scale small -csv grid.csv -json grid.json
//	arsweep -study flowtable -csv ''                 # JSON only (jq-friendly)
//	arsweep -study flowtable -json ''                # CSV only
//	arsweep -study flowtable -prefix-share           # fork points from shared checkpoints
//	arsweep -study flowtable -prefix-share -snapshots ckpt/   # persist warm starts
//	arsweep -list                                    # available studies
//
// The default emits both renderings concatenated to stdout (a human-
// readable record); pipe into jq or a CSV reader by skipping the other
// emitter (pass an empty -csv or -json value).
//
// A sweep point is executed exactly like a standalone system.New + Run with
// the same mutated configuration, so grid cycle counts are directly
// comparable to arsim output. See EXPERIMENTS.md for the built-in studies'
// measured grids.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/workload"
)

// emit writes one rendering to path: "-" means stdout, "" means skip.
func emit(path string, render func(io.Writer) error) error {
	switch path {
	case "":
		return nil
	case "-":
		return render(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	studyFlag := flag.String("study", "", "study to run (see -list)")
	scaleFlag := flag.String("scale", "tiny", "input scale (tiny, small, medium)")
	jsonFlag := flag.String("json", "-", "JSON output path (- for stdout, empty to skip)")
	csvFlag := flag.String("csv", "-", "CSV output path (- for stdout, empty to skip)")
	workersFlag := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	shardsFlag := flag.String("shards", "0", "simulation kernel per grid point (0 = sequential, \"auto\" = resolve per point, N = force N shards); results are bit-identical, sharded points hold their resolved worker count in the pool")
	prefixFlag := flag.Bool("prefix-share", false, "factor the grid into shared-prefix families and fork points from one checkpoint per family (results identical, wall clock lower)")
	snapFlag := flag.String("snapshots", "", "snapshot store directory for prefix-share checkpoints (persists warm starts across runs)")
	listFlag := flag.Bool("list", false, "list available studies and exit")
	flag.Parse()

	if *listFlag {
		for _, n := range sweep.StudyNames() {
			fmt.Println(n)
		}
		return
	}
	scale, err := workload.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arsweep:", err)
		os.Exit(2)
	}
	grid, err := sweep.StudyGrid(*studyFlag, scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arsweep:", err)
		os.Exit(2)
	}
	grid.Workers = *workersFlag
	if grid.SimShards, err = system.ParseKernel(*shardsFlag); err != nil {
		fmt.Fprintln(os.Stderr, "arsweep: -shards:", err)
		os.Exit(2)
	}

	// Ctrl-C cancels the pool: queued points never start.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var res *sweep.Result
	if *prefixFlag {
		var snaps *store.Store
		if *snapFlag != "" {
			snaps, err = store.Open(*snapFlag, store.Options{SegmentPrefix: "snap"})
			if err != nil {
				fmt.Fprintln(os.Stderr, "arsweep:", err)
				os.Exit(1)
			}
			defer snaps.Close()
		}
		var st *sweep.PrefixStats
		res, st, err = sweep.RunPrefixShared(ctx, grid, nil, snaps)
		if err == nil {
			fmt.Fprintf(os.Stderr, "arsweep: prefix-share: %d families, %d leader runs, %d store hits, %d forks, %d cold fallbacks\n",
				st.Families, st.LeaderRuns, st.StoreHits, st.ForkResumes, st.ColdFallbacks)
		}
	} else {
		res, err = sweep.Run(ctx, grid)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "arsweep:", err)
		os.Exit(1)
	}
	if err := emit(*jsonFlag, func(w io.Writer) error { return sweep.WriteJSON(w, res) }); err != nil {
		fmt.Fprintln(os.Stderr, "arsweep:", err)
		os.Exit(1)
	}
	if err := emit(*csvFlag, func(w io.Writer) error { return sweep.WriteCSV(w, res) }); err != nil {
		fmt.Fprintln(os.Stderr, "arsweep:", err)
		os.Exit(1)
	}
}
