package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"repro/internal/workload"
)

// nonFinite matches the renderings fmt produces for NaN/±Inf.
var nonFinite = regexp.MustCompile(`NaN|[+-]?Inf`)

// TestEveryFigRendersFinite is the figure-plumbing smoke test: every -fig
// id must render at ScaleTiny without panicking and without a NaN/Inf
// anywhere in its output. One runner is shared so the two suites simulate
// once.
func TestEveryFigRendersFinite(t *testing.T) {
	figs := []string{"table4.1", "5.1a", "5.1b", "5.2a", "5.2b", "5.3", "5.4", "5.5", "5.6", "5.7", "5.8"}
	var out bytes.Buffer
	r := &runner{scale: workload.ScaleTiny, out: &out}
	for _, fig := range figs {
		out.Reset()
		if err := r.run(fig); err != nil {
			t.Fatalf("-fig %s: %v", fig, err)
		}
		if out.Len() == 0 {
			t.Fatalf("-fig %s: empty render", fig)
		}
		if loc := nonFinite.FindString(out.String()); loc != "" {
			line := ""
			for _, l := range strings.Split(out.String(), "\n") {
				if nonFinite.MatchString(l) {
					line = l
					break
				}
			}
			t.Fatalf("-fig %s: non-finite value %q in output line %q", fig, loc, line)
		}
	}
}

// TestUnknownFigErrors keeps the CLI's error path honest.
func TestUnknownFigErrors(t *testing.T) {
	var out bytes.Buffer
	r := &runner{scale: workload.ScaleTiny, out: &out}
	if err := r.run("9.9"); err == nil {
		t.Fatal("unknown figure id accepted")
	}
}

// TestStampBenchPath pins the suite+scale filename stamping contract.
func TestStampBenchPath(t *testing.T) {
	cases := []struct{ in, scale, want string }{
		{"BENCH_after.json", "small", "BENCH_after.fig51a.small.json"},
		{"BENCH_baseline.json", "tiny", "BENCH_baseline.fig51a.tiny.json"},
		{"out/x.json", "medium", "out/x.fig51a.medium.json"},
		{"-", "small", "-"},
		// Already stamped: left alone (idempotent re-runs).
		{"BENCH_after.fig51a.small.json", "small", "BENCH_after.fig51a.small.json"},
	}
	for _, c := range cases {
		if got := stampBenchPath(c.in, "fig51a", c.scale); got != c.want {
			t.Errorf("stampBenchPath(%q, %q) = %q, want %q", c.in, c.scale, got, c.want)
		}
	}
}
