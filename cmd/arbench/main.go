// Command arbench regenerates the thesis's evaluation tables and figures
// (Chapter 5) on the simulated machine and prints the series each figure
// plots.
//
// Usage:
//
//	arbench -fig all            # every table and figure
//	arbench -fig 5.1a           # one figure
//	arbench -fig 5.4 -scale tiny
//
// Figure ids: table4.1, 5.1a, 5.1b, 5.2a, 5.2b, 5.3, 5.4, 5.5, 5.6, 5.7,
// 5.8.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/workload"
)

type runner struct {
	scale   workload.Scale
	out     io.Writer
	shards  int
	workers int
	bench   *experiments.Suite // benchmark suite cache
	micro   *experiments.Suite // microbenchmark suite cache
}

// configure applies the kernel flags to every suite run (results are
// bit-identical for any value; this only selects the execution strategy).
func (r *runner) configure() experiments.Configure {
	if r.shards == 0 {
		return nil
	}
	return func(cfg *system.Config) {
		cfg.Shards, cfg.Workers = r.shards, r.workers
	}
}

func (r *runner) benchSuite() (*experiments.Suite, error) {
	if r.bench == nil {
		s, err := experiments.RunSuite(r.scale, workload.Benchmarks(), system.Schemes(), r.configure())
		if err != nil {
			return nil, err
		}
		r.bench = s
	}
	return r.bench, nil
}

func (r *runner) microSuite() (*experiments.Suite, error) {
	if r.micro == nil {
		s, err := experiments.RunSuite(r.scale, workload.Microbenchmarks(), system.Schemes(), r.configure())
		if err != nil {
			return nil, err
		}
		r.micro = s
	}
	return r.micro, nil
}

func (r *runner) run(fig string) error {
	out := r.out
	switch fig {
	case "table4.1":
		experiments.Table41(out)
	case "5.1a":
		s, err := r.benchSuite()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Figure 5.1(a): Runtime Speedup over DRAM (benchmarks)")
		t, err := experiments.Fig51(s)
		if err != nil {
			return err
		}
		t.Print(out)
	case "5.1b":
		s, err := r.microSuite()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Figure 5.1(b): Runtime Speedup over DRAM (microbenchmarks)")
		t, err := experiments.Fig51(s)
		if err != nil {
			return err
		}
		t.Print(out)
	case "5.2a":
		s, err := r.benchSuite()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Figure 5.2(a): Update Roundtrip Latency Breakdown (benchmarks)")
		experiments.Fig52(s).Print(out)
	case "5.2b":
		s, err := r.microSuite()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Figure 5.2(b): Update Roundtrip Latency Breakdown (microbenchmarks)")
		experiments.Fig52(s).Print(out)
	case "5.3":
		s, err := r.benchSuite()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Figure 5.3: LUD Stalls and Update Distribution (per-cube 4x4 grids)")
		experiments.PrintHeatmaps(out, experiments.Fig53(s))
	case "5.4":
		s, err := r.benchSuite()
		if err != nil {
			return err
		}
		m, err := r.microSuite()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Figure 5.4(a): Data Movement normalized to HMC (benchmarks)")
		tb, err := experiments.Fig54(s)
		if err != nil {
			return err
		}
		tb.Print(out)
		fmt.Fprintln(out, "Figure 5.4(b): Data Movement normalized to HMC (microbenchmarks)")
		tm, err := experiments.Fig54(m)
		if err != nil {
			return err
		}
		tm.Print(out)
	case "5.5", "5.6":
		asPower := fig == "5.5"
		name := map[bool]string{true: "Power", false: "Energy"}[asPower]
		figno := map[bool]string{true: "5.5", false: "5.6"}[asPower]
		s, err := r.benchSuite()
		if err != nil {
			return err
		}
		m, err := r.microSuite()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Figure %s(a): Normalized %s over DRAM (benchmarks)\n", figno, name)
		tb, err := experiments.Fig55to57(s, asPower)
		if err != nil {
			return err
		}
		tb.Print(out, "benchmarks")
		fmt.Fprintf(out, "Figure %s(b): Normalized %s over DRAM (microbenchmarks)\n", figno, name)
		tm, err := experiments.Fig55to57(m, asPower)
		if err != nil {
			return err
		}
		tm.Print(out, "microbenchmarks")
	case "5.7":
		s, err := r.benchSuite()
		if err != nil {
			return err
		}
		m, err := r.microSuite()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Figure 5.7: Normalized Energy-Delay Product over DRAM")
		tb, err := experiments.Fig55to57(s, false)
		if err != nil {
			return err
		}
		tb.Print(out, "benchmarks")
		tm, err := experiments.Fig55to57(m, false)
		if err != nil {
			return err
		}
		tm.Print(out, "microbenchmarks")
	case "5.8":
		fmt.Fprintln(out, "Figure 5.8: LUD Phase Analysis and Dynamic Offloading")
		res, err := experiments.Fig58(r.scale)
		if err != nil {
			return err
		}
		res.Print(out)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

// benchRun is one (workload, scheme) wall-clock measurement.
type benchRun struct {
	Workload     string  `json:"workload"`
	Scheme       string  `json:"scheme"`
	WallNS       int64   `json:"wall_ns"`
	Cycles       uint64  `json:"cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// Sched carries the sharded conductor's scheduling counters (waves
	// run/fused/skipped, barriers elided, park events) so coordination
	// overhead is observable in the committed snapshots, not inferred from
	// wall clock; nil for sequential-kernel runs.
	Sched *sim.SchedCounters `json:"sched,omitempty"`
}

// benchReport is the machine-readable simulator-speed snapshot committed as
// BENCH_*.json, tracking the perf trajectory across PRs. Shards/Workers
// record the simulation kernel the report was measured with (0 =
// sequential). HostCPUs is the machine's logical CPU count
// (runtime.NumCPU) and Gomaxprocs the Go scheduler's parallelism cap at
// measurement time — they differ under quota-limited containers or an
// explicit GOMAXPROCS, and a sharded wall-clock number needs both to be
// interpreted. (Reports before the split recorded GOMAXPROCS under
// host_cpus; see EXPERIMENTS.md.)
type benchReport struct {
	Suite        string     `json:"suite"`
	Scale        string     `json:"scale"`
	Shards       int        `json:"shards,omitempty"`
	Workers      int        `json:"workers,omitempty"`
	HostCPUs     int        `json:"host_cpus"`
	Gomaxprocs   int        `json:"gomaxprocs"`
	Runs         []benchRun `json:"runs"`
	TotalWallNS  int64      `json:"total_wall_ns"`
	TotalCycles  uint64     `json:"total_cycles"`
	CyclesPerSec float64    `json:"cycles_per_sec"`
}

// stampBenchPath derives the output filename for a benchmark report:
// unless the caller opted out ("-" or a path already containing the
// ".fig51a." stamp), the suite and scale are inserted before the
// extension — BENCH_after.json at ScaleSmall becomes
// BENCH_after.fig51a.small.json — so reports from different suites and
// scales can be committed side by side without overwriting each other.
func stampBenchPath(path, suite, scaleName string) string {
	if path == "-" || strings.Contains(path, "."+suite+".") {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + suite + "." + scaleName + ext
}

// runBenchJSON times every (benchmark, scheme) pair of the Fig 5.1a suite
// serially (so per-run wall times are not distorted by parallelism) and
// writes the JSON report to path ("-" for stdout), with suite and scale
// stamped into the filename.
func runBenchJSON(path string, scale workload.Scale, scaleName string, shards, workers int) error {
	rep := benchReport{Suite: "fig5.1a", Scale: scaleName, Shards: shards, Workers: workers, HostCPUs: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0)}
	path = stampBenchPath(path, "fig51a", scaleName)
	for _, wl := range workload.Benchmarks() {
		for _, sch := range system.Schemes() {
			cfg := system.DefaultConfig(sch)
			cfg.Shards, cfg.Workers = shards, workers
			sys, err := system.New(cfg, wl, scale)
			if err != nil {
				return err
			}
			start := time.Now()
			res, err := sys.Run()
			wall := time.Since(start)
			if err != nil {
				return err
			}
			br := benchRun{
				Workload:     wl,
				Scheme:       sch.String(),
				WallNS:       wall.Nanoseconds(),
				Cycles:       res.Cycles,
				CyclesPerSec: float64(res.Cycles) / wall.Seconds(),
			}
			if sc, ok := sys.SchedCounters(); ok {
				br.Sched = &sc
			}
			rep.Runs = append(rep.Runs, br)
			rep.TotalWallNS += wall.Nanoseconds()
			rep.TotalCycles += res.Cycles
		}
	}
	rep.CyclesPerSec = float64(rep.TotalCycles) / (float64(rep.TotalWallNS) / 1e9)
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	figFlag := flag.String("fig", "all", "figure to regenerate (all, table4.1, 5.1a, 5.1b, 5.2a, 5.2b, 5.3, 5.4, 5.5, 5.6, 5.7, 5.8)")
	scaleFlag := flag.String("scale", "small", "input scale (tiny, small, medium)")
	benchFlag := flag.String("benchjson", "", "write a machine-readable Fig 5.1a wall-clock benchmark report to this file, with suite+scale stamped into the name (use - for stdout), and exit")
	shardsFlag := flag.String("shards", "0", "sharded simulation kernel: tile/cube groups per side (0 = sequential kernel, \"auto\" = resolve from topology and GOMAXPROCS; results are bit-identical)")
	workersFlag := flag.String("workers", "0", "sharded kernel worker threads per simulation (0 = shards, \"auto\" = resolve with -shards)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (profile shard-scaling bottlenecks directly from the harness)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	scale, err := workload.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbench:", err)
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "arbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "arbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "arbench:", err)
			}
		}()
	}
	shards, err := system.ParseKernel(*shardsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbench: -shards:", err)
		os.Exit(2)
	}
	workers, err := system.ParseKernel(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbench: -workers:", err)
		os.Exit(2)
	}
	if *benchFlag != "" {
		if err := runBenchJSON(*benchFlag, scale, scale.String(), shards, workers); err != nil {
			fmt.Fprintln(os.Stderr, "arbench:", err)
			os.Exit(1)
		}
		return
	}
	r := &runner{scale: scale, out: os.Stdout, shards: shards, workers: workers}
	figs := []string{*figFlag}
	if *figFlag == "all" {
		figs = []string{"table4.1", "5.1a", "5.1b", "5.2a", "5.2b", "5.3", "5.4", "5.5", "5.6", "5.7", "5.8"}
	}
	for _, f := range figs {
		if err := r.run(f); err != nil {
			fmt.Fprintln(os.Stderr, "arbench:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
